"""Fault recovery: crash-safe persistence, circuit breaking, shard loss.

Four deterministic fault campaigns, each driven entirely by a seeded
:class:`~repro.fault.FaultPlan` (no process kills, no flakiness):

1. **Journal replay** — a streaming ingester crashes after a checkpoint with
   unflushed batches in the write-ahead journal; recovery must reproduce the
   pre-crash model *bitwise*, and a torn journal tail must be discarded
   cleanly (recovering exactly the durable prefix).
2. **Snapshot rollback** — torn publishes land corrupt versions on disk
   (write verification disabled to let them through); ``load_latest`` must
   quarantine every corrupt version, roll back to the newest intact one and
   never serve corrupt bytes.  With verification enabled (the default), the
   same faults are absorbed by publish-time retries instead.
3. **Serving circuit breaker** — a window of injected model faults trips the
   breaker; every request in the campaign must still be answered (last-good
   results or the fallback estimator — zero served errors), and once the
   fault window passes the breaker must close and serve bitwise-fresh
   results again.
4. **Degraded shards** — injected synopsis faults exhaust a shard's
   consecutive-failure probation and knock it out; the renormalized
   survivor combine must stay within :data:`DEGRADED_TOLERANCE` mean
   relative deviation of the full ensemble.

Set ``BENCH_FAULT_SMOKE=1`` for the reduced CI smoke configuration (the
latency gate is skipped there; recovery and availability gates hold
everywhere).
"""

from __future__ import annotations

import copy
import os
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.errors import CircuitOpenError
from repro.core.kde import KDESelectivityEstimator
from repro.core.streaming import StreamingADE
from repro.data.generators import gaussian_mixture_table
from repro.experiments.runner import TableResult
from repro.fault.plan import FaultPlan, use_fault_plan
from repro.obs.metrics import MetricsRegistry
from repro.persist.journal import IngestJournal, JournaledIngest
from repro.persist.store import ModelStore
from repro.serve.breaker import CircuitBreaker
from repro.serve.server import EstimatorServer
from repro.shard.parallel import ShardExecutor
from repro.shard.sharded import ShardedEstimator
from repro.workload.generators import UniformWorkload
from repro.workload.queries import compile_queries

from report import bench_report

SMOKE = os.environ.get("BENCH_FAULT_SMOKE") == "1"

#: Documented accuracy tolerance for degraded-mode serving: mean relative
#: deviation of the renormalized survivor combine from the full ensemble
#: (see ARCHITECTURE.md, "Fault model & recovery").
DEGRADED_TOLERANCE = 0.15

#: Per-request latency budget (p99) while the breaker campaign runs —
#: degraded answers must stay cheap.  Enforced only outside smoke mode.
P99_BUDGET_SECONDS = 0.050


def _table(rows: int, seed: int = 7):
    return gaussian_mixture_table(
        rows=rows, dimensions=2, components=4, separation=4.0, seed=seed, name="bench"
    )


def _plan_for(table, estimator, queries: int, seed: int = 11):
    workload = UniformWorkload(table, volume_fraction=0.15, seed=seed).generate(queries)
    return compile_queries(workload, estimator.columns)


# -- phase 1: write-ahead journal crash + replay ------------------------------

def journal_replay(root: Path, rows: int, queries: int) -> dict:
    table = _table(rows)
    rng = np.random.default_rng(23)
    matrix = table.as_matrix()
    lo = matrix.min(axis=0)
    hi = matrix.max(axis=0)
    batches = [rng.uniform(lo, hi, size=(48, 2)) for _ in range(9)]

    out: dict[str, float | bool] = {}
    for tear_tail, tag in ((False, "clean"), (True, "torn")):
        subdir = root / f"journal_{tag}"
        store = ModelStore(subdir / "store")
        journal = IngestJournal(subdir / "ingest.journal")
        model = StreamingADE(max_kernels=64).fit(table)
        reference = copy.deepcopy(model)
        ingest = JournaledIngest(model, journal, store, "m")

        plan = FaultPlan(seed=5)
        if tear_tail:
            # Journal append hits count one per batch; tear the final one so
            # the crash leaves a half-written record at the tail.
            plan.arm("persist.journal.append", action="torn", at=(len(batches),))
        with use_fault_plan(plan):
            for index, batch in enumerate(batches):
                ingest.insert(batch)
                if index == 3:
                    ingest.checkpoint()
        journal.close()  # "crash": no final checkpoint, journal tail on disk

        # The survivor the recovery must reproduce: same batches, same flush
        # boundary (the checkpoint flushes) — flush grouping shapes the
        # streaming synopsis, so the reference mirrors it exactly.
        durable = batches if not tear_tail else batches[:-1]
        for index, batch in enumerate(durable):
            reference.insert(batch)
            if index == 3:
                reference.flush()
        reference.flush()

        recovered = JournaledIngest.recover(
            IngestJournal(subdir / "ingest.journal"), store, "m"
        )
        recovered.flush()
        info = recovered.last_recovery
        query_plan = _plan_for(table, reference, queries)
        bitwise = bool(
            np.array_equal(
                recovered.estimator.estimate_batch(query_plan),
                reference.estimate_batch(query_plan),
            )
        )
        recovered.close()
        out[f"{tag}_bitwise_equal"] = bitwise
        out[f"{tag}_replayed_rows"] = float(info["replayed_rows"])
        out[f"{tag}_torn_tail"] = bool(info["torn_tail"])
    return out


# -- phase 2: corrupt publishes, quarantine + rollback ------------------------

def snapshot_rollback(root: Path, rows: int, queries: int) -> dict:
    table = _table(rows)
    models = [
        KDESelectivityEstimator(sample_size=100 + 10 * i).fit(table) for i in range(6)
    ]

    # Unverified store: torn publishes land corrupt version files on disk
    # (the read-back verify would otherwise catch them before the claim).
    unverified = ModelStore(root / "rollback", verify_publish=False)
    plan = FaultPlan(seed=9)
    plan.arm("persist.publish.write", action="torn", at=(4, 5, 6))
    with use_fault_plan(plan):
        for model in models:
            unverified.publish("m", model)

    version, loaded = unverified.load_latest("m")
    query_plan = _plan_for(table, loaded, queries)
    rollback_bitwise = bool(
        np.array_equal(
            loaded.estimate_batch(query_plan),
            models[version.version - 1].estimate_batch(query_plan),
        )
    )
    quarantined = len(list((root / "rollback" / "m").glob("*.corrupt")))
    pointer = int((root / "rollback" / "m" / "LATEST").read_text().strip())

    # Verified store: the same torn write is absorbed by publish retries and
    # never reaches a version slot.
    verified = ModelStore(root / "verified")
    retry_plan = FaultPlan(seed=9)
    rule = retry_plan.arm("persist.publish.write", action="torn", at=(1,))
    with use_fault_plan(retry_plan):
        verified.publish("m", models[0])
    _, absorbed = verified.load_latest("m")
    absorbed_bitwise = bool(
        np.array_equal(
            absorbed.estimate_batch(query_plan),
            models[0].estimate_batch(query_plan),
        )
    )
    return {
        "served_version": float(version.version),
        "quarantined": float(quarantined),
        "pointer_repaired_to": float(pointer),
        "rollback_bitwise_equal": rollback_bitwise,
        "verify_retries_fired": float(rule.fired),
        "verified_publish_bitwise_equal": absorbed_bitwise,
    }


# -- phase 3: circuit breaker availability ------------------------------------

def breaker_campaign(root: Path, rows: int, requests: int) -> dict:
    table = _table(rows)
    model = KDESelectivityEstimator(sample_size=200).fit(table)
    fallback = KDESelectivityEstimator(sample_size=80, seed=2).fit(table)

    # A small rotating query pool: the healthy prefix of the campaign seeds
    # the last-good store, so most degraded answers are stale hits.
    pool = [
        _plan_for(table, model, queries=1, seed=100 + i) for i in range(12)
    ]
    baseline = [model.estimate_batch(p) for p in pool]

    metrics = MetricsRegistry()
    breaker = CircuitBreaker(failure_threshold=3, reset_timeout=0.5, probe_successes=2)
    server = EstimatorServer(
        model,
        cache_size=0,  # every request exercises the breaker-gated miss path
        metrics=metrics,
        breaker=breaker,
        fallback=fallback,
    )

    fault_plan = FaultPlan(seed=13)
    # Ten consecutive model faults starting at the 21st model call: three trip
    # the breaker, the rest are eaten by half-open probes.
    fault_plan.arm("serve.estimate", action="raise", after=20, limit=10)

    errors = 0
    latencies = []
    with use_fault_plan(fault_plan):
        for i in range(requests):
            query_plan = pool[i % len(pool)]
            start = time.perf_counter()
            try:
                server.estimate_batch(query_plan, now=0.1 * i)
            except CircuitOpenError:
                errors += 1
            latencies.append(time.perf_counter() - start)
        # Post-recovery: the fault window is exhausted and the breaker closed;
        # fresh answers must match the direct model bitwise again.
        recovered = all(
            np.array_equal(
                server.estimate_batch(pool[i], now=0.1 * (requests + i)),
                baseline[i],
            )
            for i in range(len(pool))
        )

    snapshot = {
        name: metrics.counter(name).value
        for name in ("serve.model_faults", "serve.stale_served", "serve.fallback_served")
    }
    return {
        "requests": float(requests),
        "served_errors": float(errors),
        "breaker_trips": float(breaker.trips),
        "final_state": breaker.state,
        "model_faults": snapshot["serve.model_faults"],
        "stale_served": snapshot["serve.stale_served"],
        "fallback_served": snapshot["serve.fallback_served"],
        "recovered_bitwise": bool(recovered),
        "p99_seconds": float(np.percentile(latencies, 99)),
    }


# -- phase 4: shard loss, renormalized survivors ------------------------------

def degraded_shards(root: Path, rows: int, queries: int) -> dict:
    table = _table(rows)
    sharded = ShardedEstimator(
        base={"name": "kde", "sample_size": 150},
        shards=4,
        parallel=None,  # serial executor: deterministic fault assignment
    ).fit(table)
    query_plan = _plan_for(table, sharded, queries)
    full = sharded.estimate_batch(query_plan)

    # Transient transport faults are absorbed by the executor's retries:
    # two consecutive injected failures stay under the retry budget, so the
    # map still returns every result.
    executor = ShardExecutor("serial")
    transient_plan = FaultPlan(seed=17)
    transient_rule = transient_plan.arm("shard.task", action="raise", at=(1, 2))
    with use_fault_plan(transient_plan):
        mapped = executor.map(lambda x: x * x, range(4))
    retries_absorbed = mapped == [0, 1, 4, 9] and transient_rule.fired == 2

    # A shard synopsis fault inside the estimate boundary puts the shard on
    # probation: each fault excludes it from that batch only, and
    # ``estimate_failure_threshold`` consecutive faults mark it lost, after
    # which the combine renormalizes over the survivors.  Shard 0 hits the
    # point first in every serial pass, so with 4 live shards its hits are
    # 1, 5, 9, …
    strikes = sharded.estimate_failure_threshold
    loss_plan = FaultPlan(seed=17)
    loss_plan.arm(
        "shard.estimate",
        action="raise",
        at=tuple(1 + pass_index * 4 for pass_index in range(strikes)),
    )
    with use_fault_plan(loss_plan):
        for _ in range(strikes):
            degraded = sharded.estimate_batch(query_plan)

    deviation = float(
        np.mean(np.abs(degraded - full) / np.maximum(full, 1e-2))
    )
    return {
        "transient_retries_absorbed": bool(retries_absorbed),
        "lost_shards": float(len(sharded.lost_shards)),
        "degraded_flagged": bool(sharded.describe().get("degraded", False)),
        "mean_relative_deviation": deviation,
    }


# -- harness ------------------------------------------------------------------

def fault_recovery(rows: int = 20_000, queries: int = 300, requests: int = 120) -> TableResult:
    """Run all four campaigns and tabulate their headline numbers."""
    result = TableResult(
        "Fault recovery: journal replay, rollback, circuit breaker, shard loss",
        ["campaign", "metric", "value"],
        [],
        notes=(
            f"{rows}-row 2-D mixture; every fault driven by a seeded "
            f"FaultPlan; degraded-mode tolerance {DEGRADED_TOLERANCE:.2f}"
        ),
    )
    phases: dict[str, dict] = {}
    with tempfile.TemporaryDirectory(prefix="bench_fault_") as tmp:
        root = Path(tmp)
        phases["journal"] = journal_replay(root, rows, queries)
        phases["rollback"] = snapshot_rollback(root, rows, queries)
        phases["breaker"] = breaker_campaign(root, rows, requests)
        phases["shards"] = degraded_shards(root, rows, queries)
    for campaign, values in phases.items():
        for metric, value in values.items():
            result.rows.append([campaign, metric, value])
    result.phases = phases  # structured view for the gate block
    return result


def test_fault_recovery(report):
    kwargs = dict(rows=4_000, queries=80, requests=80) if SMOKE else {}
    with bench_report("fault_recovery", smoke=SMOKE) as rep:
        result = report(fault_recovery, **kwargs)
        phases = result.phases
        rep.note(f"smoke={SMOKE}")
        for campaign, values in phases.items():
            for metric, value in values.items():
                rep.metric(f"{campaign}_{metric}", value)

        journal = phases["journal"]
        assert rep.gate("journal_replay_bitwise", journal["clean_bitwise_equal"])
        assert rep.gate("journal_torn_tail_bitwise", journal["torn_bitwise_equal"])
        assert rep.gate("journal_torn_tail_detected", journal["torn_torn_tail"])

        rollback = phases["rollback"]
        assert rep.gate(
            "rollback_serves_newest_intact",
            rollback["served_version"] == 3.0
            and rollback["rollback_bitwise_equal"]
            and rollback["pointer_repaired_to"] == 3.0,
            detail=rollback["served_version"],
        )
        assert rep.gate(
            "rollback_quarantines_all_corrupt",
            rollback["quarantined"] == 3.0,
            detail=rollback["quarantined"],
        )
        assert rep.gate(
            "verified_publish_absorbs_torn_write",
            rollback["verify_retries_fired"] >= 1.0
            and rollback["verified_publish_bitwise_equal"],
        )

        breaker = phases["breaker"]
        assert rep.gate(
            "breaker_zero_served_errors",
            breaker["served_errors"] == 0.0,
            detail=breaker["served_errors"],
        )
        assert rep.gate(
            "breaker_tripped_and_recovered",
            breaker["breaker_trips"] >= 1.0
            and breaker["final_state"] == "closed"
            and breaker["recovered_bitwise"],
            detail=breaker["breaker_trips"],
        )
        assert rep.gate(
            "breaker_degraded_paths_used",
            breaker["stale_served"] + breaker["fallback_served"] > 0.0,
        )
        p99 = breaker["p99_seconds"]
        ok = rep.gate(
            "breaker_p99_within_budget",
            p99 <= P99_BUDGET_SECONDS,
            detail=p99,
            enforced=not SMOKE,
        )
        if not SMOKE:
            assert ok, f"p99 {p99:.4f}s > {P99_BUDGET_SECONDS:.3f}s while degraded"

        shards = phases["shards"]
        assert rep.gate(
            "shard_transient_retries_absorbed", shards["transient_retries_absorbed"]
        )
        assert rep.gate("shard_loss_detected", shards["lost_shards"] == 1.0)
        assert rep.gate("shard_degraded_flagged", shards["degraded_flagged"])
        assert rep.gate(
            "shard_degraded_within_tolerance",
            shards["mean_relative_deviation"] <= DEGRADED_TOLERANCE,
            detail=shards["mean_relative_deviation"],
        )
