"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so the
package can also be installed in environments whose tooling predates PEP 660
editable installs (``python setup.py develop``), e.g. offline machines
without the ``wheel`` package.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Adaptive density estimation for selectivity estimation in database systems "
        "(VLDB 2006 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)
