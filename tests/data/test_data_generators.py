"""Unit tests for the synthetic dataset generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import InvalidParameterError
from repro.data.generators import (
    DATASET_BUILDERS,
    clustered_table,
    correlated_table,
    gaussian_mixture_density,
    gaussian_mixture_table,
    make_dataset,
    mixed_table,
    sample_gaussian_mixture,
    uniform_table,
    zipf_table,
)


class TestUniform:
    def test_shape_and_range(self) -> None:
        table = uniform_table(1000, dimensions=3, low=2.0, high=5.0, seed=1)
        assert table.row_count == 1000
        assert table.column_names == ("x0", "x1", "x2")
        data = table.as_matrix()
        assert data.min() >= 2.0
        assert data.max() <= 5.0

    def test_reproducibility(self) -> None:
        a = uniform_table(100, seed=3).as_matrix()
        b = uniform_table(100, seed=3).as_matrix()
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self) -> None:
        a = uniform_table(100, seed=3).as_matrix()
        b = uniform_table(100, seed=4).as_matrix()
        assert not np.array_equal(a, b)

    def test_invalid_bounds(self) -> None:
        with pytest.raises(InvalidParameterError):
            uniform_table(10, low=1.0, high=0.0)

    def test_negative_rows(self) -> None:
        with pytest.raises(InvalidParameterError):
            uniform_table(-1)

    def test_custom_column_names(self) -> None:
        table = uniform_table(10, dimensions=2, column_names=["a", "b"], seed=0)
        assert table.column_names == ("a", "b")

    def test_column_name_mismatch_raises(self) -> None:
        with pytest.raises(InvalidParameterError):
            uniform_table(10, dimensions=2, column_names=["only"])


class TestGaussianMixture:
    def test_multimodality(self) -> None:
        table = gaussian_mixture_table(20_000, dimensions=1, components=2, separation=10.0, seed=2)
        values = table.column("x0")
        center = float(values.mean())
        # The gap between modes holds almost no data.
        gap = np.mean((values > center - 1.0) & (values < center + 1.0))
        assert gap < 0.1

    def test_dimensions(self) -> None:
        table = gaussian_mixture_table(500, dimensions=3, seed=3)
        assert table.as_matrix().shape == (500, 3)

    def test_invalid_parameters(self) -> None:
        with pytest.raises(InvalidParameterError):
            gaussian_mixture_table(10, components=0)
        with pytest.raises(InvalidParameterError):
            gaussian_mixture_table(10, separation=-1.0)

    def test_density_integrates_to_one(self) -> None:
        means = np.array([[0.0], [5.0]])
        stds = np.array([[1.0], [0.5]])
        weights = np.array([0.3, 0.7])
        grid = np.linspace(-10, 15, 4000).reshape(-1, 1)
        density = gaussian_mixture_density(grid, means, stds, weights)
        assert np.trapezoid(density, grid[:, 0]) == pytest.approx(1.0, abs=1e-3)

    def test_sampler_matches_density_mass(self) -> None:
        rng = np.random.default_rng(5)
        means = np.array([[0.0], [6.0]])
        stds = np.array([[1.0], [1.0]])
        weights = np.array([0.5, 0.5])
        sample = sample_gaussian_mixture(50_000, means, stds, weights, rng)
        fraction_near_zero = float(np.mean(np.abs(sample[:, 0]) < 1.0))
        assert fraction_near_zero == pytest.approx(0.5 * 0.683, abs=0.02)


class TestZipf:
    def test_skew_increases_concentration(self) -> None:
        mild = zipf_table(20_000, theta=0.2, seed=6).column("x0")
        heavy = zipf_table(20_000, theta=1.8, seed=6).column("x0")
        domain = 1000.0
        head_mild = float(np.mean(mild < domain * 0.05))
        head_heavy = float(np.mean(heavy < domain * 0.05))
        assert head_heavy > head_mild

    def test_zero_theta_is_roughly_uniform(self) -> None:
        values = zipf_table(50_000, theta=0.0, seed=7).column("x0")
        assert float(np.mean(values < 500.0)) == pytest.approx(0.5, abs=0.02)

    def test_invalid_parameters(self) -> None:
        with pytest.raises(InvalidParameterError):
            zipf_table(10, theta=-1.0)
        with pytest.raises(InvalidParameterError):
            zipf_table(10, distinct=0)

    def test_values_within_domain(self) -> None:
        values = zipf_table(5000, theta=1.0, domain=100.0, seed=8).column("x0")
        assert values.min() >= 0.0
        assert values.max() <= 100.0 + 1e-9


class TestCorrelated:
    def test_correlation_close_to_target(self) -> None:
        table = correlated_table(30_000, dimensions=2, correlation=0.8, seed=9)
        observed = np.corrcoef(table.column("x0"), table.column("x1"))[0, 1]
        assert observed == pytest.approx(0.8, abs=0.03)

    def test_invalid_parameters(self) -> None:
        with pytest.raises(InvalidParameterError):
            correlated_table(10, dimensions=1)
        with pytest.raises(InvalidParameterError):
            correlated_table(10, correlation=1.0)

    def test_higher_dimensions(self) -> None:
        table = correlated_table(1000, dimensions=4, correlation=0.5, seed=10)
        assert table.as_matrix().shape == (1000, 4)


class TestClusteredAndMixed:
    def test_clustered_shape(self) -> None:
        table = clustered_table(2000, dimensions=2, clusters=3, seed=11)
        assert table.row_count == 2000
        assert table.as_matrix().shape == (2000, 2)

    def test_clustered_invalid_parameters(self) -> None:
        with pytest.raises(InvalidParameterError):
            clustered_table(10, clusters=0)
        with pytest.raises(InvalidParameterError):
            clustered_table(10, noise_fraction=1.5)

    def test_mixed_table_columns(self) -> None:
        table = mixed_table(3000, seed=12)
        assert set(table.column_names) == {"skewed", "multimodal", "base", "corr"}
        assert table.row_count == 3000
        observed = np.corrcoef(table.column("base"), table.column("corr"))[0, 1]
        assert observed > 0.6


class TestRegistry:
    def test_all_builders_run(self) -> None:
        for kind in DATASET_BUILDERS:
            table = make_dataset(kind, 200, seed=1)
            assert table.row_count == 200

    def test_unknown_kind_raises(self) -> None:
        with pytest.raises(InvalidParameterError):
            make_dataset("nope", 10)
