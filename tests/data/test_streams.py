"""Unit tests for the drifting data streams."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.errors import InvalidParameterError
from repro.data.streams import (
    DataStream,
    gradual_drift_stream,
    rotating_drift_stream,
    stationary_stream,
    sudden_drift_stream,
)


class TestDataStream:
    def test_invalid_parameters(self) -> None:
        with pytest.raises(InvalidParameterError):
            DataStream(0, 10, 10, lambda i, r: np.zeros((10, 1)))
        with pytest.raises(InvalidParameterError):
            DataStream(1, 0, 10, lambda i, r: np.zeros((0, 1)))
        with pytest.raises(InvalidParameterError):
            DataStream(1, 10, 0, lambda i, r: np.zeros((10, 1)))

    def test_batch_shapes_and_count(self) -> None:
        stream = stationary_stream(dimensions=2, batch_size=50, batches=7, seed=1)
        batches = list(stream)
        assert len(batches) == 7
        for batch in batches:
            assert batch.shape == (50, 2)
        assert stream.total_rows == 350
        assert stream.column_names == ["x0", "x1"]

    def test_materialize_matches_iteration(self) -> None:
        stream = stationary_stream(dimensions=1, batch_size=20, batches=5, seed=2)
        assert stream.materialize().shape == (100, 1)

    def test_reproducible_given_seed(self) -> None:
        a = stationary_stream(batch_size=30, batches=3, seed=3).materialize()
        b = stationary_stream(batch_size=30, batches=3, seed=3).materialize()
        np.testing.assert_array_equal(a, b)

    def test_bad_generator_shape_raises(self) -> None:
        stream = DataStream(1, 10, 2, lambda i, r: np.zeros((5, 1)))
        with pytest.raises(InvalidParameterError):
            list(stream)


class TestStationary:
    def test_first_and_last_batches_similar(self) -> None:
        stream = stationary_stream(batch_size=2000, batches=10, seed=4)
        batches = list(stream)
        assert np.mean(batches[0]) == pytest.approx(np.mean(batches[-1]), abs=0.5)


class TestSuddenDrift:
    def test_distribution_shifts_at_breakpoint(self) -> None:
        stream = sudden_drift_stream(
            batch_size=1000, batches=10, drift_at=(0.5,), shift=10.0, seed=5
        )
        batches = list(stream)
        before = float(np.mean(batches[0]))
        after = float(np.mean(batches[-1]))
        assert after - before == pytest.approx(10.0, abs=1.5)

    def test_multiple_breakpoints(self) -> None:
        stream = sudden_drift_stream(
            batch_size=500, batches=9, drift_at=(1 / 3, 2 / 3), shift=5.0, seed=6
        )
        batches = list(stream)
        first = float(np.mean(batches[0]))
        middle = float(np.mean(batches[4]))
        last = float(np.mean(batches[-1]))
        assert middle - first == pytest.approx(5.0, abs=1.5)
        assert last - first == pytest.approx(10.0, abs=1.5)

    def test_invalid_breakpoint_raises(self) -> None:
        with pytest.raises(InvalidParameterError):
            sudden_drift_stream(drift_at=(1.5,))


class TestGradualDrift:
    def test_distribution_moves_continuously(self) -> None:
        stream = gradual_drift_stream(batch_size=1000, batches=11, total_shift=10.0, seed=7)
        batches = list(stream)
        means = [float(np.mean(b)) for b in batches]
        assert means[-1] - means[0] == pytest.approx(10.0, abs=1.5)
        assert means[5] - means[0] == pytest.approx(5.0, abs=1.5)
        # Monotone (up to sampling noise) rather than a single jump.
        diffs = np.diff(means)
        assert np.mean(diffs > -0.5) > 0.8


class TestRotatingDrift:
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        dimensions=st.integers(min_value=1, max_value=3),
        batch_size=st.integers(min_value=10, max_value=200),
        batches=st.integers(min_value=2, max_value=12),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_shapes_and_count_for_any_configuration(
        self, dimensions: int, batch_size: int, batches: int, seed: int
    ) -> None:
        stream = rotating_drift_stream(
            dimensions=dimensions, batch_size=batch_size, batches=batches, seed=seed
        )
        produced = list(stream)
        assert len(produced) == batches
        assert all(batch.shape == (batch_size, dimensions) for batch in produced)
        assert np.isfinite(np.vstack(produced)).all()

    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_reproducible_given_seed(self, seed: int) -> None:
        kwargs = dict(batch_size=50, batches=4, drift_at=(0.5,), seed=seed)
        np.testing.assert_array_equal(
            rotating_drift_stream(**kwargs).materialize(),
            rotating_drift_stream(**kwargs).materialize(),
        )

    def test_rotation_oscillates_in_one_dimension(self) -> None:
        # Half a revolution with no jumps: the mean rises by ~radius at the
        # quarter turn (sin peak) and returns near the start at the end.
        stream = rotating_drift_stream(
            batch_size=2000, batches=9, radius=4.0, revolutions=0.5, seed=11
        )
        means = [float(np.mean(b)) for b in stream]
        assert means[4] - means[0] == pytest.approx(4.0, abs=1.0)
        assert means[-1] - means[0] == pytest.approx(0.0, abs=1.0)

    def test_breakpoint_adds_mean_shift_on_top_of_rotation(self) -> None:
        # One full revolution: the rotation cancels between the first and
        # last batch, so the surviving mean difference is the sudden jump.
        stream = rotating_drift_stream(
            batch_size=2000,
            batches=11,
            radius=2.0,
            revolutions=1.0,
            drift_at=(0.5,),
            shift=8.0,
            seed=12,
        )
        batches = list(stream)
        jump = float(np.mean(batches[-1])) - float(np.mean(batches[0]))
        assert jump == pytest.approx(8.0, abs=1.5)

    def test_invalid_parameters_raise(self) -> None:
        with pytest.raises(InvalidParameterError):
            rotating_drift_stream(radius=-1.0)
        with pytest.raises(InvalidParameterError):
            rotating_drift_stream(drift_at=(1.5,))


class TestBreakpointClampingAndDeduplication:
    def test_drift_near_one_still_fires(self) -> None:
        """Regression: drift_at=0.999 with 100 batches rounded to batch 100,
        one past the end, so the drift silently never fired."""
        stream = sudden_drift_stream(
            batch_size=400, batches=100, drift_at=(0.999,), shift=10.0, seed=8
        )
        batches = list(stream)
        first = float(np.mean(batches[0]))
        last = float(np.mean(batches[-1]))
        assert last - first == pytest.approx(10.0, abs=1.5)

    def test_drift_near_zero_still_observable(self) -> None:
        # A breakpoint rounding to batch 0 would shift *every* batch, which is
        # indistinguishable from no drift; clamping to batch 1 keeps at least
        # one pre-drift batch.
        stream = sudden_drift_stream(
            batch_size=400, batches=100, drift_at=(0.001,), shift=10.0, seed=9
        )
        batches = list(stream)
        assert float(np.mean(batches[1])) - float(np.mean(batches[0])) == pytest.approx(
            10.0, abs=1.5
        )

    def test_nearby_breakpoints_deduplicate_to_single_jump(self) -> None:
        """Regression: two fractions rounding to the same batch doubled the jump."""
        stream = sudden_drift_stream(
            batch_size=400, batches=100, drift_at=(0.5, 0.504), shift=10.0, seed=10
        )
        batches = list(stream)
        first = float(np.mean(batches[0]))
        last = float(np.mean(batches[-1]))
        assert last - first == pytest.approx(10.0, abs=1.5)  # one shift, not two
