"""Crash safety: checksums, quarantine + rollback, pointer repair, journal.

Every crash in this file is simulated deterministically through a
:class:`~repro.fault.FaultPlan` — no process kills — so each scenario replays
bit-for-bit.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import InjectedFault, PersistenceError, SnapshotCorruptError
from repro.core.kde import KDESelectivityEstimator
from repro.core.streaming import StreamingADE
from repro.data.generators import gaussian_mixture_table
from repro.fault.plan import FaultPlan, use_fault_plan
from repro.persist.journal import IngestJournal, JournaledIngest
from repro.persist.snapshot import load_estimator, save_estimator, verify_snapshot
from repro.persist.store import ModelStore
from repro.workload.generators import UniformWorkload
from repro.workload.queries import compile_queries

TABLE = gaussian_mixture_table(rows=1500, dimensions=2, seed=11, name="crash")
WORKLOAD = UniformWorkload(TABLE, volume_fraction=0.2, seed=12).generate(40)


def _fit(sample_size: int = 120) -> KDESelectivityEstimator:
    return KDESelectivityEstimator(sample_size=sample_size).fit(TABLE)


def _estimates(estimator) -> np.ndarray:
    return estimator.estimate_batch(compile_queries(WORKLOAD, estimator.columns))


# One snapshot, fitted and serialized once for the whole property run.
_REFERENCE = _fit()
_REFERENCE_ESTIMATES = _estimates(_REFERENCE)


@pytest.fixture(scope="module")
def snapshot_bytes(tmp_path_factory) -> bytes:
    path = tmp_path_factory.mktemp("prop") / "ref.npz"
    save_estimator(_REFERENCE, path)
    return path.read_bytes()


class TestChecksumProperty:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_any_single_bitflip_is_detected_or_harmless(
        self, data, snapshot_bytes: bytes, tmp_path_factory
    ) -> None:
        """Flip any one bit of a snapshot: the load either raises the typed
        corruption error or returns a bitwise-identical model (flips in zip
        padding/metadata that the reader never consumes are harmless) — it
        never silently serves corrupted estimates."""
        position = data.draw(
            st.integers(min_value=0, max_value=len(snapshot_bytes) * 8 - 1)
        )
        corrupted = bytearray(snapshot_bytes)
        corrupted[position // 8] ^= 1 << (position % 8)
        path = tmp_path_factory.mktemp("flip") / "flip.npz"
        path.write_bytes(bytes(corrupted))
        try:
            loaded = load_estimator(path)
        except (SnapshotCorruptError, PersistenceError):
            return
        np.testing.assert_array_equal(_estimates(loaded), _REFERENCE_ESTIMATES)

    def test_verify_snapshot_reports_checksum_presence(self, tmp_path) -> None:
        path = tmp_path / "ok.npz"
        save_estimator(_REFERENCE, path)
        assert verify_snapshot(path) is True


class TestTornPublish:
    def test_verified_publish_absorbs_torn_writes(self, tmp_path) -> None:
        store = ModelStore(tmp_path)
        plan = FaultPlan(seed=1)
        rule = plan.arm("persist.publish.write", action="torn", at=(1, 2))
        with use_fault_plan(plan):
            store.publish("m", _REFERENCE)
        assert rule.fired == 2  # two rewrites, third attempt clean
        np.testing.assert_array_equal(
            _estimates(store.load("m")), _REFERENCE_ESTIMATES
        )

    def test_unverified_corrupt_publish_rolls_back(self, tmp_path) -> None:
        store = ModelStore(tmp_path, verify_publish=False)
        intact = _fit(sample_size=90)
        store.publish("m", intact)
        plan = FaultPlan(seed=1)
        plan.arm("persist.publish.write", action="torn")
        with use_fault_plan(plan):
            store.publish("m", _REFERENCE)  # lands corrupt as v2

        version, loaded = store.load_latest("m")
        assert version.version == 1
        np.testing.assert_array_equal(_estimates(loaded), _estimates(intact))
        # The corrupt version was quarantined aside and the pointer repaired.
        assert list(tmp_path.glob("m/*.corrupt"))
        assert (tmp_path / "m" / "LATEST").read_text().strip() == "1"

    def test_all_versions_corrupt_raises_persistence_error(self, tmp_path) -> None:
        store = ModelStore(tmp_path, verify_publish=False)
        plan = FaultPlan(seed=1)
        plan.arm("persist.publish.write", action="torn")
        with use_fault_plan(plan):
            store.publish("m", _REFERENCE)
        with pytest.raises(PersistenceError):
            store.load_latest("m")

    def test_explicit_version_load_raises_without_quarantine(self, tmp_path) -> None:
        store = ModelStore(tmp_path, verify_publish=False)
        plan = FaultPlan(seed=1)
        plan.arm("persist.publish.write", action="torn")
        with use_fault_plan(plan):
            store.publish("m", _REFERENCE)
        with pytest.raises(SnapshotCorruptError):
            store.load("m", version=1)
        assert not list(tmp_path.glob("m/*.corrupt"))  # targeted load: no rename


class TestCrashedPublish:
    def test_crash_before_pointer_flip_never_commits(self, tmp_path) -> None:
        """The pointer flip is the commit point: a crash after the version
        slot is claimed but before the flip leaves the previous version
        live, and the next publish simply skips past the orphaned slot."""
        intact = _fit(sample_size=90)
        store = ModelStore(tmp_path)
        store.publish("m", intact)
        plan = FaultPlan(seed=1)
        plan.arm("persist.publish.crash", action="raise")
        with use_fault_plan(plan):
            with pytest.raises(InjectedFault):
                store.publish("m", _REFERENCE)

        # The crashed publish never committed: readers still get v1.
        restarted = ModelStore(tmp_path)
        assert restarted.latest_version("m") == 1
        np.testing.assert_array_equal(
            _estimates(restarted.load("m")), _estimates(intact)
        )
        # The orphaned v2 slot is claimed, so the next publish takes v3 and
        # commits normally.
        version = restarted.publish("m", _REFERENCE)
        assert version.version == 3
        assert (tmp_path / "m" / "LATEST").read_text().strip() == "3"
        np.testing.assert_array_equal(
            _estimates(restarted.load("m")), _REFERENCE_ESTIMATES
        )


class TestPointerRegression:
    @pytest.fixture()
    def store(self, tmp_path) -> ModelStore:
        store = ModelStore(tmp_path)
        store.publish("m", _fit(sample_size=90))
        store.publish("m", _REFERENCE)
        return store

    def test_zero_byte_pointer_falls_back_and_rewrites(self, store) -> None:
        pointer = store.root / "m" / "LATEST"
        pointer.write_bytes(b"")
        assert store.latest_version("m") == 2
        assert pointer.read_text().strip() == "2"

    def test_garbage_pointer_falls_back_and_rewrites(self, store) -> None:
        pointer = store.root / "m" / "LATEST"
        pointer.write_text("not-a-version\n")
        assert store.latest_version("m") == 2
        assert pointer.read_text().strip() == "2"

    def test_missing_pointer_falls_back_and_rewrites(self, store) -> None:
        pointer = store.root / "m" / "LATEST"
        pointer.unlink()
        assert store.latest_version("m") == 2
        assert pointer.read_text().strip() == "2"

    def test_dangling_pointer_falls_back(self, store) -> None:
        pointer = store.root / "m" / "LATEST"
        pointer.write_text("99\n")
        assert store.latest_version("m") == 2
        assert pointer.read_text().strip() == "2"

    def test_repair_never_regresses_a_valid_pointer(self, store) -> None:
        """A repair computed from a stale scan must lose to a concurrent
        publisher's newer pointer: the regress is only allowed when the
        pointed-to snapshot file is actually gone."""
        model_dir = store.root / "m"
        ModelStore._write_pointer(model_dir, 1, repair=True)
        assert (model_dir / "LATEST").read_text().strip() == "2"
        # Once v2 is gone (quarantined/deleted), the repair may regress.
        (model_dir / "v00000002.npz").unlink()
        ModelStore._write_pointer(model_dir, 1, repair=True)
        assert (model_dir / "LATEST").read_text().strip() == "1"

    def test_read_only_store_resolves_via_scan(self, store, monkeypatch) -> None:
        """A stale pointer on a store we cannot write to must still resolve
        through the version scan instead of raising from the repair."""
        pointer = store.root / "m" / "LATEST"
        pointer.write_text("99\n")

        def deny(*args, **kwargs):
            raise PermissionError(13, "read-only store")

        monkeypatch.setattr(ModelStore, "_write_pointer", staticmethod(deny))
        assert store.latest_version("m") == 2
        assert pointer.read_text().strip() == "99"  # nothing was rewritten


class TestJournalCrashConsistency:
    def _batches(self, count: int = 8, rows: int = 32) -> list[np.ndarray]:
        rng = np.random.default_rng(3)
        matrix = TABLE.as_matrix()
        lo, hi = matrix.min(axis=0), matrix.max(axis=0)
        return [rng.uniform(lo, hi, size=(rows, 2)) for _ in range(count)]

    def _reference(self, batches, checkpoint_after: int) -> StreamingADE:
        reference = StreamingADE(max_kernels=48).fit(TABLE)
        for index, batch in enumerate(batches):
            reference.insert(batch)
            if index == checkpoint_after:
                reference.flush()  # the checkpoint's flush boundary
        reference.flush()
        return reference

    def test_replay_reproduces_the_model_bitwise(self, tmp_path) -> None:
        batches = self._batches()
        store = ModelStore(tmp_path / "store")
        ingest = JournaledIngest(
            StreamingADE(max_kernels=48).fit(TABLE),
            IngestJournal(tmp_path / "wal"),
            store,
            "m",
        )
        for index, batch in enumerate(batches):
            ingest.insert(batch)
            if index == 2:
                ingest.checkpoint()
        ingest.journal.close()  # crash: pending batches only in the journal

        recovered = JournaledIngest.recover(
            IngestJournal(tmp_path / "wal"), store, "m"
        )
        assert recovered.last_recovery["replayed_batches"] == len(batches) - 3
        assert not recovered.last_recovery["torn_tail"]
        recovered.flush()
        np.testing.assert_array_equal(
            _estimates(recovered.estimator),
            _estimates(self._reference(batches, checkpoint_after=2)),
        )
        recovered.close()

    def test_torn_tail_is_discarded(self, tmp_path) -> None:
        batches = self._batches()
        store = ModelStore(tmp_path / "store")
        ingest = JournaledIngest(
            StreamingADE(max_kernels=48).fit(TABLE),
            IngestJournal(tmp_path / "wal"),
            store,
            "m",
        )
        plan = FaultPlan(seed=2)
        plan.arm("persist.journal.append", action="torn", at=(len(batches),))
        with use_fault_plan(plan):
            for index, batch in enumerate(batches):
                ingest.insert(batch)
                if index == 2:
                    ingest.checkpoint()
        ingest.journal.close()

        recovered = JournaledIngest.recover(
            IngestJournal(tmp_path / "wal"), store, "m"
        )
        assert recovered.last_recovery["torn_tail"]
        assert recovered.last_recovery["replayed_batches"] == len(batches) - 4
        recovered.flush()
        np.testing.assert_array_equal(
            _estimates(recovered.estimator),
            _estimates(self._reference(batches[:-1], checkpoint_after=2)),
        )
        recovered.close()

    def test_torn_tail_is_truncated_before_new_appends(self, tmp_path) -> None:
        """Recovery cuts the garbage tail off the journal: batches inserted
        *after* a torn-tail recovery land contiguously after the last intact
        record, so they survive a second crash (the journal reopens in append
        mode — without the truncation they would be written past the garbage
        and be unreachable to replay)."""
        batches = self._batches()
        store = ModelStore(tmp_path / "store")
        ingest = JournaledIngest(
            StreamingADE(max_kernels=48).fit(TABLE),
            IngestJournal(tmp_path / "wal"),
            store,
            "m",
        )
        plan = FaultPlan(seed=2)
        plan.arm("persist.journal.append", action="torn", at=(len(batches),))
        with use_fault_plan(plan):
            for index, batch in enumerate(batches):
                ingest.insert(batch)
                if index == 2:
                    ingest.checkpoint()
        ingest.journal.close()

        recovered = JournaledIngest.recover(
            IngestJournal(tmp_path / "wal"), store, "m"
        )
        assert recovered.last_recovery["torn_tail"]
        extra = self._batches(count=2, rows=16)
        for batch in extra:
            recovered.insert(batch)
        recovered.close()  # second crash, before any checkpoint

        again = JournaledIngest.recover(
            IngestJournal(tmp_path / "wal"), store, "m"
        )
        assert not again.last_recovery["torn_tail"]
        assert (
            again.last_recovery["replayed_batches"]
            == (len(batches) - 4) + len(extra)
        )
        again.flush()
        np.testing.assert_array_equal(
            _estimates(again.estimator),
            _estimates(self._reference(batches[:-1] + extra, checkpoint_after=2)),
        )
        again.close()

    def test_stale_journal_is_not_replayed(self, tmp_path) -> None:
        """A journal whose checkpoint predates the loaded snapshot (someone
        published past it out-of-band) must not replay old rows on top."""
        batches = self._batches(count=4)
        store = ModelStore(tmp_path / "store")
        ingest = JournaledIngest(
            StreamingADE(max_kernels=48).fit(TABLE),
            IngestJournal(tmp_path / "wal"),
            store,
            "m",
        )
        for batch in batches:
            ingest.insert(batch)
        ingest.checkpoint()
        ingest.insert(batches[0])
        ingest.journal.close()
        # Out-of-band publish: the store moves past the journal's checkpoint.
        out_of_band = StreamingADE(max_kernels=48).fit(TABLE)
        store.publish("m", out_of_band)

        recovered = JournaledIngest.recover(
            IngestJournal(tmp_path / "wal"), store, "m"
        )
        assert recovered.last_recovery["loaded_version"] == 2
        assert recovered.last_recovery["checkpoint_version"] == 1
        assert recovered.last_recovery["replayed_batches"] == 0
        recovered.close()
