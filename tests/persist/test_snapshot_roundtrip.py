"""Snapshot round-trip contract: ``load(save(est))`` is bitwise faithful.

For every registered estimator, saving to a single ``.npz`` file and loading
it back must reproduce ``estimate_batch`` output with zero tolerance, along
with the fitted metadata (columns, row count, memory accounting).  The suite
also pins the satellite guarantees: snapshots flush pending streaming
buffers, restored reservoirs continue their stream identically, and the
format-version policy rejects snapshots from the future instead of guessing.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.errors import NotFittedError, PersistenceError
from repro.core.estimator import (
    SelectivityEstimator,
    available_estimators,
    create_estimator,
)
from repro.core.streaming import StreamingADE
from repro.engine.table import Table
from repro.persist.snapshot import (
    FORMAT_VERSION,
    HEADER_KEY,
    load_estimator,
    read_snapshot_header,
    save_estimator,
)
from repro.workload.queries import RangeQuery, compile_queries

ALL_ESTIMATORS = sorted(available_estimators())

#: Constructor overrides keeping per-test fit cost small.
_FAST_KWARGS: dict[str, dict] = {
    "kde": {"sample_size": 200},
    "adaptive_kde": {"sample_size": 200},
    "sampling": {"sample_size": 200},
    "reservoir_sampling": {"sample_size": 200},
    "streaming_ade": {"max_kernels": 32},
    "grid": {"cells_per_dim": 8},
    "st_histogram": {"cells_per_dim": 6},
    "wavelet": {"resolution": 64, "coefficients": 16},
}


def _fitted(name: str, table: Table) -> SelectivityEstimator:
    return create_estimator(name, **_FAST_KWARGS.get(name, {})).fit(table)


@pytest.mark.parametrize("name", ALL_ESTIMATORS)
class TestRoundTrip:
    def test_estimates_bitwise_equal(
        self, name: str, mixture_table_2d: Table, workload_2d, tmp_path
    ) -> None:
        estimator = _fitted(name, mixture_table_2d)
        plan = compile_queries(workload_2d, estimator.columns)
        before = estimator.estimate_batch(plan)
        path = tmp_path / f"{name}.npz"
        estimator.save(path)
        loaded = load_estimator(path)
        np.testing.assert_allclose(loaded.estimate_batch(plan), before, rtol=0.0, atol=0.0)

    def test_metadata_survives(self, name: str, small_table: Table, tmp_path) -> None:
        estimator = _fitted(name, small_table)
        path = tmp_path / f"{name}.npz"
        estimator.save(path)
        loaded = load_estimator(path)
        assert type(loaded) is type(estimator)
        assert loaded.is_fitted
        assert loaded.columns == estimator.columns
        assert loaded.row_count == estimator.row_count
        assert loaded.memory_bytes() == estimator.memory_bytes()
        assert loaded.config() == estimator.config()

    def test_state_dict_roundtrip_without_disk(
        self, name: str, small_table: Table, workload_1d
    ) -> None:
        estimator = _fitted(name, small_table)
        before = estimator.estimate_batch(workload_1d)
        clone = create_estimator(name, **_FAST_KWARGS.get(name, {}))
        clone.load_state(estimator.state_dict())
        np.testing.assert_allclose(
            clone.estimate_batch(workload_1d), before, rtol=0.0, atol=0.0
        )

    def test_header_is_json_and_versioned(
        self, name: str, small_table: Table, tmp_path
    ) -> None:
        estimator = _fitted(name, small_table)
        path = tmp_path / f"{name}.npz"
        estimator.save(path)
        header = read_snapshot_header(path)
        assert header["format"] == FORMAT_VERSION
        assert header["estimator"] == name
        assert header["columns"] == list(estimator.columns)
        assert header["row_count"] == estimator.row_count
        json.dumps(header)  # the whole header must be pure JSON

    def test_load_state_rejects_wrong_estimator(
        self, name: str, small_table: Table
    ) -> None:
        estimator = _fitted(name, small_table)
        other = "kde" if name != "kde" else "sampling"
        with pytest.raises(Exception):
            create_estimator(other).load_state(estimator.state_dict())


class TestSnapshotEdgeCases:
    @pytest.mark.parametrize("name", ALL_ESTIMATORS)
    def test_unfitted_estimator_roundtrips_as_unfitted(self, name, tmp_path) -> None:
        estimator = create_estimator(name, **_FAST_KWARGS.get(name, {}))
        path = tmp_path / "unfitted.npz"
        save_estimator(estimator, path)
        loaded = load_estimator(path)
        assert not loaded.is_fitted
        assert loaded.config() == estimator.config()
        with pytest.raises(NotFittedError):
            loaded.estimate(RangeQuery({"x0": (0.0, 1.0)}))

    def test_feedback_log_survives(self, mixture_table_2d, workload_2d, tmp_path) -> None:
        estimator = create_estimator("feedback_ade").fit(mixture_table_2d)
        truths = mixture_table_2d.true_selectivities(workload_2d)
        for query, truth in zip(workload_2d[:25], truths[:25]):
            estimator.feedback(query, float(truth))
        before = estimator.estimate_batch(workload_2d)
        path = tmp_path / "feedback.npz"
        estimator.save(path)
        loaded = load_estimator(path)
        assert loaded.feedback_count == estimator.feedback_count
        assert loaded.record_count == estimator.record_count
        np.testing.assert_allclose(
            loaded.estimate_batch(workload_2d), before, rtol=0.0, atol=0.0
        )

    def test_streaming_pending_buffer_is_flushed_into_snapshot(self, tmp_path) -> None:
        """Regression: rows buffered below chunk_size must not vanish on save."""
        estimator = StreamingADE(max_kernels=32, chunk_size=256)
        estimator.start(["x0", "x1"])
        rows = np.random.default_rng(5).normal(size=(100, 2))  # all stay pending
        estimator.insert(rows)
        assert estimator._pending_count == 100  # the buffer really is populated
        path = tmp_path / "pending.npz"
        estimator.save(path)
        loaded = load_estimator(path)
        assert loaded.row_count == 100
        assert loaded.kernel_count > 0  # flushed into kernels, not dropped
        query = RangeQuery({"x0": (-10.0, 10.0), "x1": (-10.0, 10.0)})
        assert loaded.estimate(query) == estimator.estimate(query) > 0.0

    def test_streaming_continues_ingesting_after_load(self, tmp_path) -> None:
        """A restored streaming model is a live model, not a frozen artifact."""
        rng = np.random.default_rng(6)
        first, second = rng.normal(size=(300, 2)), rng.normal(loc=3.0, size=(300, 2))
        original = StreamingADE(max_kernels=32).start(["x0", "x1"])
        original.insert(first)
        path = tmp_path / "live.npz"
        original.save(path)
        loaded = load_estimator(path)
        original.insert(second)
        loaded.insert(second)
        query = RangeQuery({"x0": (2.0, 4.0), "x1": (2.0, 4.0)})
        assert loaded.estimate(query) == original.estimate(query)

    def test_reservoir_replays_stream_identically_after_load(self, tmp_path) -> None:
        """The restored generator state makes future replacements identical."""
        rng = np.random.default_rng(7)
        first, second = rng.normal(size=(500, 1)), rng.normal(size=(500, 1))
        original = create_estimator("reservoir_sampling", sample_size=64)
        original.start(["x0"])
        original.insert(first)
        path = tmp_path / "reservoir.npz"
        original.save(path)
        loaded = load_estimator(path)
        original.insert(second)
        loaded.insert(second)
        np.testing.assert_array_equal(
            loaded._reservoir.sample(), original._reservoir.sample()
        )

    def test_future_format_rejected(self, small_table, tmp_path) -> None:
        estimator = create_estimator("independence").fit(small_table)
        path = tmp_path / "future.npz"
        estimator.save(path)
        with np.load(path, allow_pickle=False) as data:
            payload = {key: data[key] for key in data.files}
        header = json.loads(bytes(payload[HEADER_KEY]).decode())
        header["format"] = FORMAT_VERSION + 1
        payload[HEADER_KEY] = np.frombuffer(
            json.dumps(header).encode(), dtype=np.uint8
        )
        with open(path, "wb") as handle:
            np.savez(handle, **payload)
        with pytest.raises(PersistenceError, match="format"):
            load_estimator(path)

    def test_non_snapshot_archive_rejected(self, tmp_path) -> None:
        path = tmp_path / "not_a_snapshot.npz"
        with open(path, "wb") as handle:
            np.savez(handle, stuff=np.zeros(3))
        with pytest.raises(PersistenceError, match="missing header"):
            load_estimator(path)

    def test_transient_io_error_is_not_corruption(
        self, small_table, tmp_path, monkeypatch
    ) -> None:
        """An errno-bearing OSError (EIO, EACCES, …) is the OS failing the
        read, not evidence of bad bytes: it must propagate verbatim so the
        store never quarantines an intact snapshot over it."""
        import errno

        from repro.core.errors import SnapshotCorruptError

        estimator = create_estimator("independence").fit(small_table)
        path = tmp_path / "intact.npz"
        estimator.save(path)

        def eio(*args, **kwargs):
            raise OSError(errno.EIO, "Input/output error")

        monkeypatch.setattr(np, "load", eio)
        with pytest.raises(OSError) as excinfo:
            load_estimator(path)
        assert not isinstance(excinfo.value, SnapshotCorruptError)
        assert excinfo.value.errno == errno.EIO
