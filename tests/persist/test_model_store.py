"""ModelStore semantics and the catalog's save/restore integration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.histogram import EquiDepthHistogram
from repro.core.errors import CatalogError, PersistenceError
from repro.core.kde import KDESelectivityEstimator
from repro.core.streaming import StreamingADE
from repro.data.generators import gaussian_mixture_table, uniform_table
from repro.engine.catalog import Catalog
from repro.experiments.runner import EstimatorSpec, fit_or_restore, use_model_store
from repro.persist.store import ModelStore
from repro.workload.generators import UniformWorkload
from repro.workload.queries import RangeQuery


@pytest.fixture()
def store(tmp_path) -> ModelStore:
    return ModelStore(tmp_path / "models")


@pytest.fixture()
def fitted(small_table) -> KDESelectivityEstimator:
    return KDESelectivityEstimator(sample_size=100).fit(small_table)


class TestModelStore:
    def test_publish_assigns_monotonic_versions(self, store, fitted) -> None:
        assert store.latest_version("m") is None
        assert store.publish("m", fitted).version == 1
        assert store.publish("m", fitted).version == 2
        assert store.publish("m", fitted).version == 3
        assert store.versions("m") == [1, 2, 3]
        assert store.latest_version("m") == 3

    def test_load_latest_and_pinned_version(
        self, store, small_table, workload_1d
    ) -> None:
        v1 = KDESelectivityEstimator(sample_size=50).fit(small_table)
        v2 = KDESelectivityEstimator(sample_size=150).fit(small_table)
        store.publish("m", v1)
        store.publish("m", v2)
        np.testing.assert_array_equal(
            store.load("m").estimate_batch(workload_1d), v2.estimate_batch(workload_1d)
        )
        np.testing.assert_array_equal(
            store.load("m", 1).estimate_batch(workload_1d),
            v1.estimate_batch(workload_1d),
        )

    def test_publish_is_write_then_rename(self, store, fitted) -> None:
        version = store.publish("m", fitted)
        assert version.path.is_file()
        # No temp debris is left next to the published snapshot.
        leftovers = [p for p in version.path.parent.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []
        # The LATEST pointer names the published version.
        assert (version.path.parent / "LATEST").read_text().strip() == "1"

    def test_latest_pointer_falls_back_to_files(self, store, fitted) -> None:
        store.publish("m", fitted)
        store.publish("m", fitted)
        (store.root / "m" / "LATEST").unlink()  # stale/corrupt pointer scenario
        assert store.latest_version("m") == 2
        assert store.load("m") is not None

    def test_prune_keeps_newest(self, store, fitted) -> None:
        for _ in range(5):
            store.publish("m", fitted)
        removed = store.prune("m", keep_versions=2)
        assert removed == [1, 2, 3]
        assert store.versions("m") == [4, 5]
        assert store.latest_version("m") == 5

    def test_default_prune_policy_applies_on_publish(self, tmp_path, fitted) -> None:
        store = ModelStore(tmp_path / "models", keep_versions=2)
        for _ in range(4):
            store.publish("m", fitted)
        assert store.versions("m") == [3, 4]

    def test_model_names_lists_published_models(self, store, fitted) -> None:
        assert store.model_names() == []
        store.publish("orders.kde", fitted)
        store.publish("users-v2", fitted)
        assert store.model_names() == ["orders.kde", "users-v2"]

    def test_invalid_model_name_rejected(self, store, fitted) -> None:
        for bad in ("", "../escape", "a/b", ".hidden"):
            with pytest.raises(PersistenceError):
                store.publish(bad, fitted)

    def test_unknown_model_and_version_raise(self, store, fitted) -> None:
        with pytest.raises(PersistenceError, match="no published versions"):
            store.load("ghost")
        store.publish("m", fitted)
        with pytest.raises(PersistenceError, match="no version"):
            store.load("m", 99)

    def test_racing_publishers_never_overwrite(self, store, small_table) -> None:
        """Version slots are claimed atomically: concurrent publishers each
        get their own snapshot file, never a silent overwrite."""
        import threading

        models = [
            KDESelectivityEstimator(sample_size=10 + i).fit(small_table)
            for i in range(8)
        ]
        # Defeat the in-process lock's serialisation of the version scan by
        # publishing through independent store handles on the same directory
        # (the cross-process scenario).
        stores = [ModelStore(store.root) for _ in models]
        barrier = threading.Barrier(len(models))

        def publish(slot: int) -> None:
            barrier.wait()
            stores[slot].publish("m", models[slot])

        threads = [threading.Thread(target=publish, args=(i,)) for i in range(len(models))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert store.versions("m") == list(range(1, len(models) + 1))
        # Every distinct model survived: sample sizes are all present.
        sizes = sorted(store.load("m", v).sample_size for v in store.versions("m"))
        assert sizes == [10 + i for i in range(len(models))]
        assert store.latest_version("m") == len(models)

    def test_describe_reads_header_only(self, store, fitted, small_table) -> None:
        store.publish("m", fitted)
        header = store.describe("m")
        assert header["estimator"] == "kde"
        assert header["row_count"] == small_table.row_count


class TestCatalogPersistence:
    @pytest.fixture()
    def catalog(self) -> Catalog:
        catalog = Catalog()
        catalog.add_table(
            gaussian_mixture_table(rows=3000, dimensions=2, seed=3, name="orders")
        )
        catalog.add_table(uniform_table(rows=1000, dimensions=1, seed=4, name="users"))
        catalog.attach_estimator("orders", StreamingADE(max_kernels=32))
        catalog.attach_estimator("users", EquiDepthHistogram(buckets=16))
        return catalog

    def test_save_restore_roundtrip_is_bitwise(self, catalog, store) -> None:
        workload = UniformWorkload(catalog.table("orders"), seed=5).generate(40)
        before = catalog.estimate_batch("orders", workload)
        versions = catalog.save(store)
        assert versions == {"orders": 1, "users": 1}

        fresh = Catalog()
        fresh.add_table(catalog.table("orders"))
        fresh.add_table(catalog.table("users"))
        restored = fresh.restore(store)
        assert sorted(restored) == ["orders", "users"]
        assert type(fresh.estimator("orders")) is StreamingADE
        np.testing.assert_array_equal(
            fresh.estimate_batch("orders", workload), before
        )

    def test_restore_skips_tables_without_models(self, catalog, store) -> None:
        catalog.save(store)
        fresh = Catalog()
        fresh.add_table(catalog.table("orders"))
        fresh.add_table(uniform_table(rows=10, dimensions=1, seed=9, name="extra"))
        assert fresh.restore(store) == ["orders"]
        assert fresh.estimator("extra") is None

    def test_restore_explicit_missing_model_raises(self, catalog, store) -> None:
        fresh = Catalog()
        fresh.add_table(catalog.table("orders"))
        with pytest.raises(CatalogError, match="no model"):
            fresh.restore(store, tables=["orders"])

    def test_attach_fitted_validates(self, catalog, small_table) -> None:
        with pytest.raises(CatalogError, match="unfitted"):
            catalog.attach_fitted("users", EquiDepthHistogram(buckets=4))
        foreign = EquiDepthHistogram(buckets=4).fit(
            uniform_table(rows=50, dimensions=3, seed=1, name="wide")
        )
        with pytest.raises(CatalogError, match="lacks"):
            catalog.attach_fitted("users", foreign)

    def test_save_includes_pending_streaming_rows(self, catalog, store) -> None:
        """Regression: rows buffered in the ingestion buffer reach the store."""
        estimator = catalog.estimator("orders")
        extra = np.random.default_rng(11).normal(loc=9.0, size=(50, 2))
        estimator.insert(extra)  # stays entirely in the pending buffer
        catalog.save(store)
        loaded = store.load("orders")
        assert loaded.row_count == estimator.row_count
        probe = RangeQuery({"x0": (8.0, 10.0), "x1": (8.0, 10.0)})
        assert loaded.estimate(probe) == estimator.estimate(probe) > 0.0

    def test_runner_saves_and_restores_models(
        self, store, small_table, workload_1d
    ) -> None:
        """The CLI's --save-models / --from-store path through the runner."""
        spec = EstimatorSpec("kde", lambda: KDESelectivityEstimator(sample_size=64))
        with use_model_store(store, save=True):
            fitted = fit_or_restore(small_table, spec, scope="s1")
        assert store.versions("small.s1.kde") == [1]
        with use_model_store(store, load=True):
            restored = fit_or_restore(small_table, spec, scope="s1")
        np.testing.assert_array_equal(
            restored.estimate_batch(workload_1d), fitted.estimate_batch(workload_1d)
        )
        # Models the store does not know fall back to a fresh fit.
        with use_model_store(store, load=True):
            fresh = fit_or_restore(small_table, spec, scope="other")
        assert fresh.is_fitted
        # Outside the context the store is untouched.
        fit_or_restore(small_table, spec, scope="outside")
        assert store.model_names() == ["small.s1.kde"]

    def test_refresh_flushes_streaming_estimators_first(self) -> None:
        """Regression: refresh must flush the pending buffer before refitting."""
        flushes: list[int] = []

        class SpyADE(StreamingADE):
            def flush(self) -> None:
                flushes.append(self._pending_count)
                super().flush()

        table = gaussian_mixture_table(rows=1000, dimensions=2, seed=6, name="t")
        catalog = Catalog()
        catalog.add_table(table)
        estimator = SpyADE(max_kernels=32)
        catalog.attach_estimator("t", estimator)
        fresh_rows = np.random.default_rng(12).normal(size=(30, 2))
        table.append_matrix(fresh_rows)
        estimator.insert(fresh_rows)
        pending = estimator._pending_count
        assert pending > 0
        flushes.clear()
        catalog.refresh("t")
        # The first flush of the refresh saw the populated buffer — the
        # pending rows were folded in, not torn down with the old model.
        assert flushes and flushes[0] == pending
        assert estimator.row_count == table.row_count


class TestForeignEntriesTolerance:
    """Regression: foreign files/directories in the store tree (a sharded
    manifest directory, stray notes, backups) must not break version scans,
    LATEST resolution or prune."""

    def test_foreign_files_in_root_and_model_dir_ignored(self, store, fitted) -> None:
        store.publish("m", fitted)
        (store.root / "README.md").write_text("not a model\n")
        (store.root / "m" / "notes.txt").write_text("scratch\n")
        (store.root / "m" / "v1.npz.bak").write_bytes(b"junk")
        assert store.model_names() == ["m"]
        assert store.versions("m") == [1]
        assert store.latest_version("m") == 1

    def test_directory_squatting_on_a_version_name(self, store, fitted) -> None:
        """A *directory* named like a snapshot file must be ignored, not
        treated as a version (loading/pruning it would fail)."""
        store.publish("m", fitted)
        squatter = store.root / "m" / "v00000002.npz"
        squatter.mkdir()
        (squatter / "part.npz").write_bytes(b"x")
        assert store.versions("m") == [1]
        assert store.latest_version("m") == 1
        # Publishing routes around the squatter (os.link refuses the slot).
        version = store.publish("m", fitted)
        assert version.version >= 2
        assert version.path.is_file()
        loaded = store.load("m")
        assert loaded.is_fitted

    def test_prune_skips_foreign_directories(self, store, fitted) -> None:
        store.publish("m", fitted)
        store.publish("m", fitted)
        squatter = store.root / "m" / "v00000099.npz"
        squatter.mkdir()
        (squatter / "inner").write_bytes(b"x")
        removed = store.prune("m", keep_versions=1)
        assert removed == [1]
        assert squatter.is_dir()  # never deleted, never crashed the prune
        assert store.versions("m") == [2]

    def test_manifest_directory_beside_models(self, store, fitted, tmp_path) -> None:
        from repro.persist.shards import save_sharded
        from repro.shard.sharded import ShardedEstimator

        table = uniform_table(rows=1500, dimensions=1, seed=9, name="u")
        sharded = ShardedEstimator("equiwidth", shards=2).fit(table)
        store.publish("m", fitted)
        save_sharded(sharded, store.root / "sharded-manifest")
        save_sharded(sharded, store.root / "m" / "sharded-manifest")
        assert store.model_names() == ["m"]
        assert store.versions("m") == [1]
        assert store.load("m").is_fitted
