"""Schema payloads in persistence envelopes: snapshots, the model store and
sharded manifests must carry the dictionary bitwise and reject drifted restores."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import create_estimator
from repro.core.errors import CatalogError
from repro.data.generators import mixed_type_table
from repro.engine.catalog import Catalog
from repro.engine.table import Table, TableSchema
from repro.persist.shards import MANIFEST_NAME, save_sharded
from repro.persist.snapshot import load_estimator, read_snapshot_header, save_estimator
from repro.persist.store import ModelStore
from repro.shard.sharded import ShardedEstimator
from repro.workload.queries import SetMembership, StringPrefix, TypedQuery


@pytest.fixture()
def table() -> Table:
    return mixed_type_table(800, seed=3)


@pytest.fixture()
def catalog(table: Table) -> Catalog:
    catalog = Catalog()
    catalog.add_table(table)
    catalog.attach_estimator(
        table.name, create_estimator("equidepth", buckets=16)
    )
    return catalog


def _fitted(table: Table):
    estimator = create_estimator("equidepth", buckets=16)
    estimator.fit(table)
    return estimator


class TestSnapshotSchema:
    def test_header_carries_schema_bitwise(self, table: Table, tmp_path) -> None:
        path = tmp_path / "model.npz"
        save_estimator(_fitted(table), path, schema=table.schema.to_json())
        header = read_snapshot_header(path)
        assert header["schema"] == table.schema.to_json()
        restored = TableSchema.from_json(header["schema"])
        for column in table.schema.encoded_columns:
            assert restored.dictionary(column) == table.schema.dictionary(column)

    def test_header_without_schema_stays_clean(self, tmp_path) -> None:
        numeric = Table("n", {"x": np.arange(50, dtype=float)})
        path = tmp_path / "plain.npz"
        save_estimator(_fitted(numeric), path)
        assert "schema" not in read_snapshot_header(path)
        load_estimator(path)  # still loads fine

    def test_snapshot_roundtrip_estimates_typed_queries(
        self, table: Table, tmp_path
    ) -> None:
        estimator = _fitted(table)
        path = tmp_path / "model.npz"
        save_estimator(estimator, path, schema=table.schema.to_json())
        loaded = load_estimator(path)
        catalog = Catalog()
        catalog.add_table(table)
        catalog.attach_fitted(table.name, loaded)
        query = TypedQuery({"product": StringPrefix("auto")})
        before = _estimate_with(estimator, table, query)
        after = catalog.estimate_selectivity(table.name, query)
        assert after == pytest.approx(before)


def _estimate_with(estimator, table: Table, query: TypedQuery) -> float:
    catalog = Catalog()
    catalog.add_table(table)
    catalog.attach_fitted(table.name, estimator)
    return catalog.estimate_selectivity(table.name, query)


class TestModelStoreSchema:
    def test_publish_describe_roundtrip(self, table: Table, tmp_path) -> None:
        store = ModelStore(tmp_path)
        store.publish("m", _fitted(table), schema=table.schema.to_json())
        assert store.describe("m")["schema"] == table.schema.to_json()

    def test_catalog_save_restore_roundtrip(
        self, catalog: Catalog, table: Table, tmp_path
    ) -> None:
        store = ModelStore(tmp_path)
        versions = catalog.save(store)
        assert versions == {table.name: 1}
        fresh = Catalog()
        fresh.add_table(table)
        assert fresh.restore(store) == [table.name]
        query = TypedQuery(
            {"region": SetMembership(["north", "south"]), "product": StringPrefix("bio")}
        )
        assert fresh.estimate_selectivity(table.name, query) == pytest.approx(
            catalog.estimate_selectivity(table.name, query)
        )

    def test_restore_rejects_dictionary_drift(
        self, catalog: Catalog, table: Table, tmp_path
    ) -> None:
        store = ModelStore(tmp_path)
        catalog.save(store)
        # Appending a novel dictionary value recodes the column: the saved
        # synopsis no longer matches the live code space.
        table.append_rows(
            {
                "amount": [1.0],
                "score": [0.0],
                "region": ["a-brand-new-region"],
                "product": ["auto-0000"],
            }
        )
        with pytest.raises(CatalogError, match="dictionary drift"):
            catalog.restore(store, tables=[table.name])

    def test_numeric_save_restore_untouched(self, tmp_path) -> None:
        numeric = Table("n", {"x": np.arange(100, dtype=float)})
        catalog = Catalog()
        catalog.add_table(numeric)
        catalog.attach_estimator("n", create_estimator("equiwidth", buckets=8))
        store = ModelStore(tmp_path)
        catalog.save(store)
        assert "schema" not in store.describe("n")
        fresh = Catalog()
        fresh.add_table(numeric)
        assert fresh.restore(store) == ["n"]


class TestShardedManifestSchema:
    def test_manifest_carries_schema(self, table: Table, tmp_path) -> None:
        estimator = ShardedEstimator(
            create_estimator("equidepth", buckets=8), shards=2
        )
        estimator.fit(table)
        save_sharded(estimator, tmp_path / "sharded", schema=table.schema.to_json())
        manifest = json.loads((tmp_path / "sharded" / MANIFEST_NAME).read_text())
        assert manifest["schema"] == table.schema.to_json()

    def test_manifest_without_schema(self, tmp_path) -> None:
        numeric = Table("n", {"x": np.arange(64, dtype=float)})
        estimator = ShardedEstimator(create_estimator("equidepth", buckets=8), shards=2)
        estimator.fit(numeric)
        save_sharded(estimator, tmp_path / "plain")
        manifest = json.loads((tmp_path / "plain" / MANIFEST_NAME).read_text())
        assert "schema" not in manifest
