"""Unit tests for error metrics and report rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import InvalidParameterError
from repro.metrics.errors import (
    ErrorSummary,
    absolute_errors,
    evaluate_estimates,
    integrated_squared_error,
    q_errors,
    relative_errors,
    summarize_errors,
)
from repro.metrics.report import format_number, render_series, render_table


class TestErrorFunctions:
    def test_absolute_errors(self) -> None:
        np.testing.assert_allclose(
            absolute_errors([0.1, 0.5], [0.2, 0.5]), [0.1, 0.0], atol=1e-12
        )

    def test_relative_errors_with_floor(self) -> None:
        errors = relative_errors([0.2], [0.1])
        assert errors[0] == pytest.approx(1.0)
        floored = relative_errors([0.1], [0.0], floor=0.01)
        assert floored[0] == pytest.approx(10.0)

    def test_q_errors_symmetric_and_at_least_one(self) -> None:
        over = q_errors([0.2], [0.1])
        under = q_errors([0.1], [0.2])
        assert over[0] == pytest.approx(under[0]) == pytest.approx(2.0)
        assert q_errors([0.3], [0.3])[0] == pytest.approx(1.0)

    def test_q_error_with_zero_truth_uses_floor(self) -> None:
        assert q_errors([0.01], [0.0], floor=0.001)[0] == pytest.approx(10.0)

    def test_length_mismatch_raises(self) -> None:
        with pytest.raises(InvalidParameterError):
            absolute_errors([0.1], [0.1, 0.2])

    def test_invalid_floor_raises(self) -> None:
        with pytest.raises(InvalidParameterError):
            relative_errors([0.1], [0.1], floor=0.0)
        with pytest.raises(InvalidParameterError):
            q_errors([0.1], [0.1], floor=-1.0)

    def test_integrated_squared_error(self) -> None:
        grid_step = 0.01
        estimated = np.full(100, 1.0)
        truth = np.full(100, 0.5)
        assert integrated_squared_error(estimated, truth, grid_step) == pytest.approx(0.25)

    def test_ise_validation(self) -> None:
        with pytest.raises(InvalidParameterError):
            integrated_squared_error(np.ones(5), np.ones(6), 0.1)
        with pytest.raises(InvalidParameterError):
            integrated_squared_error(np.ones(5), np.ones(5), 0.0)


class TestSummaries:
    def test_summary_statistics(self) -> None:
        errors = np.arange(1, 101, dtype=float)
        summary = summarize_errors(errors)
        assert summary.count == 100
        assert summary.mean == pytest.approx(50.5)
        assert summary.median == pytest.approx(50.5)
        assert summary.maximum == 100.0
        assert summary.p90 >= summary.median
        assert summary.p99 >= summary.p95 >= summary.p90
        assert "mean" in str(summary)

    def test_empty_summary_is_nan(self) -> None:
        summary = summarize_errors([])
        assert summary.count == 0
        assert np.isnan(summary.mean)

    def test_as_dict_round_trip(self) -> None:
        summary = summarize_errors([1.0, 2.0, 3.0])
        data = summary.as_dict()
        assert data["count"] == 3
        assert data["mean"] == pytest.approx(2.0)

    def test_evaluate_estimates_keys(self) -> None:
        result = evaluate_estimates([0.1, 0.2], [0.1, 0.3])
        assert set(result) == {"absolute", "relative", "q"}
        assert all(isinstance(v, ErrorSummary) for v in result.values())


class TestReportRendering:
    def test_format_number(self) -> None:
        assert format_number(3) == "3"
        assert format_number(0.5, precision=2) == "0.50"
        assert format_number(float("nan")) == "nan"
        assert format_number(1.5e7) == "1.5000e+07"
        assert format_number("text") == "text"
        assert format_number(True) == "True"

    def test_render_table_alignment(self) -> None:
        text = render_table(["name", "value"], [["a", 1.0], ["bbbb", 22.5]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[2]
        assert len(lines) == 6
        # All rows have the same rendered width.
        assert len(set(len(line) for line in lines[2:])) <= 2

    def test_render_table_without_title(self) -> None:
        text = render_table(["a"], [[1]])
        assert text.splitlines()[0].startswith("a")

    def test_render_series(self) -> None:
        text = render_series(
            "x", [1, 2], {"alpha": [0.1, 0.2], "beta": [0.3, 0.4]}, title="Fig"
        )
        assert "alpha" in text
        assert "beta" in text
        assert "0.4000" in text

    def test_render_series_with_missing_points(self) -> None:
        text = render_series("x", [1, 2, 3], {"s": [0.1]})
        assert "nan" in text
