"""Typed predicate nodes, schema lowering, and encode→lower→estimate round trips.

The hypothesis suites check the central invariant of the typed surface: for
any dictionary-encoded table, lowering a typed workload onto the numeric plan
and counting rows through the plan must agree *bitwise* with brute-force row
filtering (``Table.selection_mask`` decodes and compares strings directly, so
the two paths share no code).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import (
    DimensionMismatchError,
    InvalidQueryError,
)
from repro import create_estimator
from repro.data.generators import mixed_type_table
from repro.engine.catalog import Catalog
from repro.engine.table import Table, TableSchema
from repro.workload.generators import TypedWorkload
from repro.workload.queries import (
    Interval,
    LoweredQueries,
    RangeQuery,
    SetMembership,
    StringPrefix,
    TypedQuery,
    compile_queries,
)

# -- strategies ---------------------------------------------------------------

words = st.text(alphabet="abcde", min_size=1, max_size=4)
dictionaries = st.lists(words, min_size=1, max_size=12, unique=True).map(sorted)


@st.composite
def encoded_tables(draw: st.DrawFn) -> Table:
    """A small table with one numeric, one categorical and one string column."""
    cat_dict = draw(dictionaries)
    str_dict = draw(dictionaries)
    rows = draw(st.integers(min_value=1, max_value=40))
    rng = np.random.default_rng(draw(st.integers(min_value=0, max_value=2**16)))
    return Table(
        "t",
        {
            "x": rng.uniform(0.0, 10.0, size=rows),
            "cat": rng.choice(cat_dict, size=rows),
            "s": rng.choice(str_dict, size=rows),
        },
        schema=TableSchema({"cat": "categorical", "s": "string"}),
    )


@st.composite
def typed_queries(draw: st.DrawFn, table: Table) -> TypedQuery:
    constraints: dict[str, object] = {}
    if draw(st.booleans()):
        low = draw(st.floats(min_value=-1.0, max_value=11.0))
        high = low + draw(st.floats(min_value=0.0, max_value=12.0))
        constraints["x"] = Interval(low, high)
    if draw(st.booleans()):
        # Mix dictionary members with absent values to exercise empty runs.
        pool = list(table.schema.dictionary("cat")) + ["zz", "qq"]
        values = draw(st.lists(st.sampled_from(pool), min_size=1, max_size=4))
        constraints["cat"] = SetMembership(values)
    if draw(st.booleans()):
        constraints["s"] = StringPrefix(draw(st.text(alphabet="abcde", max_size=3)))
    if not constraints:
        constraints["x"] = Interval(0.0, 10.0)
    return TypedQuery(constraints)


# -- predicate nodes ----------------------------------------------------------

class TestPredicateNodes:
    def test_set_membership_normalises(self) -> None:
        assert SetMembership(["b", "a", "b"]) == SetMembership(("a", "b"))
        assert SetMembership.equals("a") == SetMembership(["a"])
        assert hash(SetMembership([1.0, 2.0])) == hash(SetMembership([2.0, 1.0]))

    def test_set_membership_rejects_bare_string_and_empty(self) -> None:
        with pytest.raises(InvalidQueryError):
            SetMembership("abc")
        with pytest.raises(InvalidQueryError):
            SetMembership([])

    def test_string_prefix_rejects_non_string(self) -> None:
        with pytest.raises(InvalidQueryError):
            StringPrefix(3)

    def test_predicates_are_immutable(self) -> None:
        pred = StringPrefix("a")
        with pytest.raises(AttributeError):
            pred.prefix = "b"
        member = SetMembership(["a"])
        with pytest.raises(AttributeError):
            member.values = frozenset()

    def test_typed_query_conversions(self) -> None:
        query = TypedQuery({"x": (1.0, 2.0), "c": ["a", "b"], "s": StringPrefix("p")})
        assert query["x"] == Interval(1.0, 2.0)
        assert query["c"] == SetMembership(["a", "b"])
        assert query.attributes == ("c", "s", "x")
        assert query.dimensionality == 3
        assert query.restrict(["x"]).attributes == ("x",)

    def test_typed_query_rejects_unknown_predicate(self) -> None:
        with pytest.raises(InvalidQueryError):
            TypedQuery({"x": "abc"})


# -- lowering -----------------------------------------------------------------

class TestLowering:
    @pytest.fixture()
    def schema(self) -> TableSchema:
        return TableSchema(
            {"cat": "categorical", "s": "string"},
            {"cat": ["a", "b", "c", "e"], "s": ["auto-1", "auto-2", "bio-1"]},
        )

    def test_in_set_lowered_to_merged_runs(self, schema: TableSchema) -> None:
        lowered = compile_queries(
            [TypedQuery({"cat": SetMembership(["a", "b", "e"])})],
            ["x", "cat"],
            schema=schema,
        )
        assert isinstance(lowered, LoweredQueries)
        assert lowered.box_count == 2  # codes {0,1} merge, {3} stands alone
        np.testing.assert_array_equal(lowered.plan.lows[:, 1], [0.0, 3.0])
        np.testing.assert_array_equal(lowered.plan.highs[:, 1], [1.0, 3.0])
        assert np.all(np.isinf(lowered.plan.lows[:, 0]))

    def test_prefix_lowered_to_single_box(self, schema: TableSchema) -> None:
        lowered = compile_queries(
            [TypedQuery({"s": StringPrefix("auto")})], ["s"], schema=schema
        )
        assert lowered.box_count == 1
        np.testing.assert_array_equal(lowered.plan.lows, [[0.0]])
        np.testing.assert_array_equal(lowered.plan.highs, [[1.0]])

    def test_absent_values_yield_zero_boxes(self, schema: TableSchema) -> None:
        lowered = compile_queries(
            [
                TypedQuery({"cat": SetMembership(["zz"])}),
                TypedQuery({"cat": SetMembership(["c"])}),
            ],
            ["cat"],
            schema=schema,
        )
        assert lowered.box_count == 1
        np.testing.assert_array_equal(lowered.group, [1])
        np.testing.assert_array_equal(lowered.reduce(np.ones(1)), [0.0, 1.0])

    def test_cross_product_of_runs(self, schema: TableSchema) -> None:
        # cat {a, c} -> 2 runs; s prefixes of both families -> handled per query
        lowered = compile_queries(
            [
                TypedQuery(
                    {"cat": SetMembership(["a", "c"]), "s": StringPrefix("auto")}
                )
            ],
            ["cat", "s"],
            schema=schema,
        )
        assert lowered.box_count == 2  # 2 cat runs x 1 s run
        np.testing.assert_array_equal(lowered.group, [0, 0])

    def test_error_names_query_and_column(self, schema: TableSchema) -> None:
        with pytest.raises(InvalidQueryError, match=r"query 1, column 'cat'"):
            compile_queries(
                [
                    TypedQuery({"cat": SetMembership(["a"])}),
                    TypedQuery({"cat": StringPrefix("a")}),
                ],
                ["cat"],
                schema=schema,
            )

    def test_unknown_column_names_query_index(self, schema: TableSchema) -> None:
        with pytest.raises(DimensionMismatchError, match=r"query 0"):
            compile_queries(
                [TypedQuery({"nope": SetMembership(["a"])})], ["cat"], schema=schema
            )

    def test_numeric_error_names_query_index(self) -> None:
        with pytest.raises(DimensionMismatchError, match=r"query 1"):
            compile_queries(
                [RangeQuery({"x": (0.0, 1.0)}), RangeQuery({"y": (0.0, 1.0)})],
                ["x"],
            )

    def test_typed_without_schema_rejected(self) -> None:
        with pytest.raises(InvalidQueryError, match="schema"):
            compile_queries([TypedQuery({"x": SetMembership([1.0])})], ["x"])

    def test_lowered_queries_not_compilable(self, schema: TableSchema) -> None:
        lowered = compile_queries(
            [TypedQuery({"cat": SetMembership(["a"])})], ["cat"], schema=schema
        )
        with pytest.raises(InvalidQueryError, match="LoweredQueries"):
            compile_queries(lowered, ["cat"])

    def test_box_cap_enforced(self) -> None:
        # 70 isolated numeric points in two columns -> 4900 boxes > 4096.
        points = SetMembership([float(2 * i) for i in range(70)])
        with pytest.raises(InvalidQueryError, match=r"query 0"):
            compile_queries(
                [TypedQuery({"x": points, "y": points})],
                ["x", "y"],
                schema=TableSchema(),
            )

    def test_plain_range_queries_with_schema_still_compile(
        self, schema: TableSchema
    ) -> None:
        lowered = compile_queries(
            [RangeQuery({"x": (0.0, 1.0)})], ["x", "cat"], schema=schema
        )
        assert lowered.box_count == 1
        np.testing.assert_array_equal(lowered.reduce(np.asarray([0.5])), [0.5])


# -- round trips --------------------------------------------------------------

class TestRoundTrip:
    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_lowered_counts_match_brute_force(self, data: st.DataObject) -> None:
        table = data.draw(encoded_tables())
        queries = [data.draw(typed_queries(table)) for _ in range(3)]
        lowered = compile_queries(
            queries, ["x", "cat", "s"], schema=table.schema
        )
        via_plan = table.true_counts(lowered)
        brute = np.asarray(
            [int(np.count_nonzero(table.selection_mask(q))) for q in queries]
        )
        np.testing.assert_array_equal(via_plan, brute)

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_true_selectivities_accept_typed_queries(
        self, data: st.DataObject
    ) -> None:
        table = data.draw(encoded_tables())
        queries = [data.draw(typed_queries(table)) for _ in range(2)]
        sels = table.true_selectivities(queries)
        expected = np.asarray([table.true_selectivity(q) for q in queries])
        np.testing.assert_array_equal(sels, expected)

    @pytest.mark.parametrize("estimator_name", ["equidepth", "equiwidth"])
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_histogram_lowering_equals_code_intervals(
        self, estimator_name: str, data: st.DataObject
    ) -> None:
        """Typed estimate == estimate of the equivalent code-interval boxes,
        bitwise, for histogram-family estimators."""
        table = data.draw(encoded_tables())
        catalog = Catalog()
        catalog.add_table(table)
        catalog.attach_estimator(
            "t", create_estimator(estimator_name, buckets=8), columns=["x", "cat", "s"]
        )
        query = data.draw(typed_queries(table))
        typed = catalog.estimate_selectivity("t", query)

        lowered = compile_queries([query], ["x", "cat", "s"], schema=table.schema)
        if lowered.box_count == 0:
            assert typed == 0.0
            return
        # Re-express each box as a plain numeric RangeQuery over codes.
        manual = [
            RangeQuery(
                {
                    col: Interval(float(lo), float(hi))
                    for col, lo, hi in zip(
                        ["x", "cat", "s"],
                        lowered.plan.lows[i],
                        lowered.plan.highs[i],
                    )
                    if np.isfinite(lo) or np.isfinite(hi)
                }
            )
            for i in range(lowered.box_count)
        ]
        per_box = catalog.estimate_batch("t", manual)
        assert typed == pytest.approx(min(float(per_box.sum()), 1.0), abs=0.0)

    def test_estimates_within_tolerance_on_mixed_table(self) -> None:
        """Typed predicates estimate within the repo's existing histogram
        tolerance against exact selectivities."""
        table = mixed_type_table(4000, seed=7)
        catalog = Catalog()
        catalog.add_table(table)
        columns = ["amount", "score", "region", "product"]
        catalog.attach_estimator(
            "mixed_type", create_estimator("equidepth", buckets=24), columns=columns
        )
        queries = TypedWorkload(
            table, attributes=columns, query_dimensions=2, seed=3
        ).generate(60)
        estimates = catalog.estimate_batch("mixed_type", queries)
        exact = table.true_selectivities(queries)
        errors = np.abs(estimates - exact)
        assert float(np.mean(errors)) < 0.05
        assert float(np.max(errors)) < 0.35

    def test_typed_workload_respects_schema(self) -> None:
        table = mixed_type_table(500, seed=1)
        queries = TypedWorkload(table, seed=2).generate(20)
        for query in queries:
            assert isinstance(query, TypedQuery)
            for attribute, predicate in query.items():
                if table.schema.is_encoded(attribute):
                    assert isinstance(predicate, (SetMembership, StringPrefix))
                else:
                    assert isinstance(predicate, Interval)

    def test_generate_workload_registry_has_typed(self) -> None:
        from repro.workload.generators import generate_workload

        table = mixed_type_table(200, seed=0)
        queries = generate_workload("typed", table, 5, seed=4)
        assert len(queries) == 5
        assert all(isinstance(q, TypedQuery) for q in queries)
