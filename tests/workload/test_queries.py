"""Unit tests for the query model (Interval, RangeQuery, QueryRegion)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.errors import DimensionMismatchError, InvalidQueryError
from repro.workload.queries import (
    CompiledQueries,
    Interval,
    QueryRegion,
    RangeQuery,
    compile_queries,
)


class TestInterval:
    def test_basic_properties(self) -> None:
        interval = Interval(1.0, 3.0)
        assert interval.width == 2.0
        assert not interval.is_point
        assert interval.is_bounded

    def test_point_interval(self) -> None:
        interval = Interval(2.0, 2.0)
        assert interval.is_point
        assert interval.width == 0.0
        assert interval.contains(2.0)

    def test_one_sided_interval(self) -> None:
        interval = Interval(-math.inf, 5.0)
        assert not interval.is_bounded
        assert interval.contains(-1e18)
        assert not interval.contains(5.1)

    def test_invalid_order_raises(self) -> None:
        with pytest.raises(InvalidQueryError):
            Interval(3.0, 1.0)

    def test_nan_raises(self) -> None:
        with pytest.raises(InvalidQueryError):
            Interval(float("nan"), 1.0)

    def test_contains_boundaries_inclusive(self) -> None:
        interval = Interval(0.0, 1.0)
        assert interval.contains(0.0)
        assert interval.contains(1.0)

    def test_intersection(self) -> None:
        assert Interval(0, 2).intersect(Interval(1, 3)) == Interval(1, 2)
        assert Interval(0, 1).intersect(Interval(2, 3)) is None
        assert Interval(0, 1).intersect(Interval(1, 2)) == Interval(1, 1)

    def test_clip(self) -> None:
        assert Interval(-5, 5).clip(0, 1) == Interval(0, 1)
        assert Interval(0.2, 0.4).clip(0, 1) == Interval(0.2, 0.4)
        clipped = Interval(2, 3).clip(0, 1)
        assert clipped.width == 0.0

    def test_overlap_fraction(self) -> None:
        interval = Interval(0.0, 0.5)
        assert interval.overlap_fraction(0.0, 1.0) == pytest.approx(0.5)
        assert interval.overlap_fraction(0.6, 1.0) == 0.0
        assert interval.overlap_fraction(0.25, 0.75) == pytest.approx(0.5)

    def test_overlap_fraction_degenerate_bucket(self) -> None:
        interval = Interval(0.0, 1.0)
        assert interval.overlap_fraction(0.5, 0.5) == 1.0
        assert interval.overlap_fraction(2.0, 2.0) == 0.0

    def test_ordering(self) -> None:
        assert Interval(0, 1) < Interval(1, 2)


class TestRangeQuery:
    def test_construction_from_tuples(self) -> None:
        query = RangeQuery({"a": (0, 1), "b": Interval(2, 3)})
        assert query.attributes == ("a", "b")
        assert query["a"] == Interval(0, 1)
        assert query["b"].low == 2.0

    def test_empty_constraints_raise(self) -> None:
        with pytest.raises(InvalidQueryError):
            RangeQuery({})

    def test_equality_independent_of_order(self) -> None:
        q1 = RangeQuery({"a": (0, 1), "b": (2, 3)})
        q2 = RangeQuery({"b": (2, 3), "a": (0, 1)})
        assert q1 == q2
        assert hash(q1) == hash(q2)

    def test_mapping_protocol(self) -> None:
        query = RangeQuery({"x": (0, 1)})
        assert len(query) == 1
        assert "x" in query
        assert list(query) == ["x"]
        assert query.dimensionality == 1

    def test_bounds_alignment(self) -> None:
        query = RangeQuery({"b": (1, 2)})
        lows, highs = query.bounds(["a", "b", "c"])
        assert lows[0] == -np.inf and highs[0] == np.inf
        assert lows[1] == 1.0 and highs[1] == 2.0
        assert lows[2] == -np.inf and highs[2] == np.inf

    def test_restrict(self) -> None:
        query = RangeQuery({"a": (0, 1), "b": (2, 3)})
        restricted = query.restrict(["a"])
        assert restricted is not None
        assert restricted.attributes == ("a",)
        assert query.restrict(["z"]) is None

    def test_volume(self) -> None:
        query = RangeQuery({"a": (0.0, 0.5)})
        domain = {"a": (0.0, 1.0), "b": (0.0, 10.0)}
        assert query.volume(domain) == pytest.approx(0.5)

    def test_volume_clipped_to_domain(self) -> None:
        query = RangeQuery({"a": (-10.0, 0.5)})
        assert query.volume({"a": (0.0, 1.0)}) == pytest.approx(0.5)

    def test_intersect(self) -> None:
        q1 = RangeQuery({"a": (0, 2)})
        q2 = RangeQuery({"a": (1, 3), "b": (0, 1)})
        joint = q1.intersect(q2)
        assert joint is not None
        assert joint["a"] == Interval(1, 2)
        assert joint["b"] == Interval(0, 1)

    def test_intersect_disjoint_returns_none(self) -> None:
        assert RangeQuery({"a": (0, 1)}).intersect(RangeQuery({"a": (2, 3)})) is None

    def test_contains_point(self) -> None:
        query = RangeQuery({"a": (0, 1), "b": (0, 1)})
        assert query.contains_point({"a": 0.5, "b": 0.5})
        assert not query.contains_point({"a": 0.5, "b": 2.0})
        assert not query.contains_point({"a": 0.5})

    def test_repr_contains_attributes(self) -> None:
        assert "a" in repr(RangeQuery({"a": (0, 1)}))

    def test_invalid_interval_raises(self) -> None:
        with pytest.raises(InvalidQueryError):
            RangeQuery({"a": (5, 1)})


class TestQueryRegion:
    def test_valid_region(self) -> None:
        region = QueryRegion(RangeQuery({"a": (0, 1)}), true_fraction=0.25)
        assert region.true_fraction == 0.25
        assert region.weight == 1.0

    def test_invalid_fraction_raises(self) -> None:
        with pytest.raises(InvalidQueryError):
            QueryRegion(RangeQuery({"a": (0, 1)}), true_fraction=1.5)

    def test_invalid_weight_raises(self) -> None:
        with pytest.raises(InvalidQueryError):
            QueryRegion(RangeQuery({"a": (0, 1)}), true_fraction=0.5, weight=0.0)


class TestCompiledQueries:
    def test_compile_aligns_bounds_with_columns(self) -> None:
        queries = [
            RangeQuery({"a": (0, 1)}),
            RangeQuery({"b": (2, 3), "a": (-1, 4)}),
        ]
        plan = compile_queries(queries, ["a", "b"])
        assert plan.columns == ("a", "b")
        assert len(plan) == 2
        assert plan.dimensionality == 2
        np.testing.assert_array_equal(plan.lows, [[0.0, -np.inf], [-1.0, 2.0]])
        np.testing.assert_array_equal(plan.highs, [[1.0, np.inf], [4.0, 3.0]])

    def test_compile_empty_workload(self) -> None:
        plan = compile_queries([], ["a"])
        assert len(plan) == 0
        assert plan.lows.shape == (0, 1)

    def test_compile_unknown_attribute_raises(self) -> None:
        with pytest.raises(DimensionMismatchError):
            compile_queries([RangeQuery({"c": (0, 1)})], ["a", "b"])

    def test_compile_without_columns_raises(self) -> None:
        with pytest.raises(InvalidQueryError):
            compile_queries([RangeQuery({"a": (0, 1)})], [])

    def test_compile_passthrough_for_matching_plan(self) -> None:
        plan = compile_queries([RangeQuery({"a": (0, 1)})], ["a"])
        assert compile_queries(plan, ["a"]) is plan

    def test_compile_restricts_superset_plan(self) -> None:
        plan = compile_queries([RangeQuery({"a": (0, 1)})], ["a", "b"])
        restricted = compile_queries(plan, ["a"])
        assert restricted.columns == ("a",)
        np.testing.assert_array_equal(restricted.lows, [[0.0]])

    def test_restrict_refuses_to_drop_constrained_column(self) -> None:
        plan = compile_queries([RangeQuery({"a": (0, 1), "b": (2, 3)})], ["a", "b"])
        with pytest.raises(DimensionMismatchError):
            plan.restrict(["a"])

    def test_immutable(self) -> None:
        plan = compile_queries([RangeQuery({"a": (0, 1)})], ["a"])
        with pytest.raises(AttributeError):
            plan.columns = ("b",)
        with pytest.raises(ValueError):
            plan.lows[0, 0] = 5.0

    def test_validation(self) -> None:
        with pytest.raises(InvalidQueryError):
            CompiledQueries(("a",), np.zeros((2, 2)), np.ones((2, 2)))
        with pytest.raises(InvalidQueryError):
            CompiledQueries(("a",), np.ones((1, 1)), np.zeros((1, 1)))
        with pytest.raises(InvalidQueryError):
            CompiledQueries(("a",), np.full((1, 1), np.nan), np.ones((1, 1)))

    def test_to_queries_round_trip(self) -> None:
        queries = [RangeQuery({"a": (0, 1), "b": (-math.inf, 3)})]
        plan = compile_queries(queries, ["a", "b"])
        rebuilt = plan.to_queries()[0]
        assert rebuilt["a"] == Interval(0, 1)
        assert rebuilt["b"] == Interval(-math.inf, 3.0)
