"""Unit tests for the workload generators."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.errors import InvalidParameterError
from repro.data.generators import gaussian_mixture_table, uniform_table
from repro.engine.table import Table
from repro.workload.generators import (
    DataCenteredWorkload,
    SkewedWorkload,
    UniformWorkload,
    generate_workload,
)


@pytest.fixture(scope="module")
def table() -> Table:
    return uniform_table(5000, dimensions=3, seed=41, column_names=["a", "b", "c"])


class TestCommonBehaviour:
    def test_generate_count(self, table: Table) -> None:
        queries = UniformWorkload(table, seed=1).generate(25)
        assert len(queries) == 25

    def test_zero_count(self, table: Table) -> None:
        assert UniformWorkload(table, seed=1).generate(0) == []

    def test_negative_count_raises(self, table: Table) -> None:
        with pytest.raises(InvalidParameterError):
            UniformWorkload(table, seed=1).generate(-1)

    def test_queries_constrain_all_attributes_by_default(self, table: Table) -> None:
        queries = UniformWorkload(table, seed=2).generate(10)
        for query in queries:
            assert query.attributes == ("a", "b", "c")

    def test_query_dimensions_subset(self, table: Table) -> None:
        queries = UniformWorkload(table, query_dimensions=2, seed=3).generate(20)
        for query in queries:
            assert query.dimensionality == 2
            assert set(query.attributes).issubset({"a", "b", "c"})

    def test_attribute_subset(self, table: Table) -> None:
        queries = UniformWorkload(table, attributes=["b"], seed=4).generate(5)
        for query in queries:
            assert query.attributes == ("b",)

    def test_volume_fraction_controls_width(self, table: Table) -> None:
        narrow = UniformWorkload(table, volume_fraction=0.01, seed=5).generate(20)
        wide = UniformWorkload(table, volume_fraction=0.5, seed=5).generate(20)
        narrow_width = np.mean([q["a"].width for q in narrow])
        wide_width = np.mean([q["a"].width for q in wide])
        assert wide_width > narrow_width * 10

    def test_reproducibility(self, table: Table) -> None:
        a = UniformWorkload(table, seed=6).generate(10)
        b = UniformWorkload(table, seed=6).generate(10)
        assert a == b

    def test_invalid_parameters(self, table: Table) -> None:
        with pytest.raises(InvalidParameterError):
            UniformWorkload(table, volume_fraction=0.0)
        with pytest.raises(InvalidParameterError):
            UniformWorkload(table, query_dimensions=5)
        with pytest.raises(InvalidParameterError):
            UniformWorkload(table, attributes=["missing"])

    def test_iterator_protocol(self, table: Table) -> None:
        generator = UniformWorkload(table, seed=7)
        queries = list(itertools.islice(iter(generator), 5))
        assert len(queries) == 5


class TestUniformWorkload:
    def test_centers_cover_domain(self, table: Table) -> None:
        queries = UniformWorkload(table, volume_fraction=0.01, seed=8).generate(300)
        centers = np.array([(q["a"].low + q["a"].high) / 2 for q in queries])
        assert centers.min() < 0.2
        assert centers.max() > 0.8


class TestDataCenteredWorkload:
    def test_queries_mostly_nonempty_on_clustered_data(self) -> None:
        table = gaussian_mixture_table(10_000, dimensions=2, components=3, separation=6.0, seed=42)
        data_centred = DataCenteredWorkload(table, volume_fraction=0.05, seed=9).generate(100)
        uniform = UniformWorkload(table, volume_fraction=0.05, seed=9).generate(100)
        hits_centred = np.mean([table.true_count(q) > 0 for q in data_centred])
        hits_uniform = np.mean([table.true_count(q) > 0 for q in uniform])
        assert hits_centred >= hits_uniform

    def test_invalid_jitter_raises(self, table: Table) -> None:
        with pytest.raises(InvalidParameterError):
            DataCenteredWorkload(table, jitter_fraction=-0.1)


class TestSkewedWorkload:
    def test_centers_concentrate_in_hot_region(self, table: Table) -> None:
        workload = SkewedWorkload(
            table,
            volume_fraction=0.01,
            hot_fraction=0.1,
            hot_probability=1.0,
            hot_position=0.5,
            seed=10,
        )
        queries = workload.generate(200)
        centers = np.array([(q["a"].low + q["a"].high) / 2 for q in queries])
        domain_low, domain_high = table.domain(["a"])["a"]
        width = domain_high - domain_low
        hot_center = domain_low + 0.5 * width
        assert np.all(np.abs(centers - hot_center) <= 0.06 * width + 1e-9)

    def test_invalid_parameters(self, table: Table) -> None:
        with pytest.raises(InvalidParameterError):
            SkewedWorkload(table, hot_fraction=0.0)
        with pytest.raises(InvalidParameterError):
            SkewedWorkload(table, hot_probability=1.5)
        with pytest.raises(InvalidParameterError):
            SkewedWorkload(table, hot_position=-0.2)


class TestGenerateWorkloadHelper:
    def test_all_kinds(self, table: Table) -> None:
        for kind in ("uniform", "data_centered", "skewed"):
            queries = generate_workload(kind, table, 5, seed=11)
            assert len(queries) == 5

    def test_unknown_kind_raises(self, table: Table) -> None:
        with pytest.raises(InvalidParameterError):
            generate_workload("mystery", table, 5)
