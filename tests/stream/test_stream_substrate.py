"""Unit tests for reservoir samplers and sliding windows."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import InvalidParameterError
from repro.stream.reservoir import DecayedReservoirSampler, ReservoirSampler
from repro.stream.windows import SlidingWindow


class TestReservoirSampler:
    def test_invalid_parameters(self) -> None:
        with pytest.raises(InvalidParameterError):
            ReservoirSampler(0, 1)
        with pytest.raises(InvalidParameterError):
            ReservoirSampler(10, 0)

    def test_fills_up_to_capacity(self) -> None:
        sampler = ReservoirSampler(capacity=50, dimensions=2, seed=0)
        sampler.insert(np.arange(60).reshape(30, 2))
        assert sampler.size == 30
        sampler.insert(np.arange(100).reshape(50, 2))
        assert sampler.size == 50
        assert sampler.seen == 80

    def test_wrong_dimension_raises(self) -> None:
        sampler = ReservoirSampler(capacity=5, dimensions=2)
        with pytest.raises(InvalidParameterError):
            sampler.insert(np.zeros((3, 3)))

    def test_sample_is_subset_of_stream(self) -> None:
        sampler = ReservoirSampler(capacity=20, dimensions=1, seed=1)
        stream = np.arange(500, dtype=float).reshape(-1, 1)
        sampler.insert(stream)
        sample = sampler.sample()
        assert sample.shape == (20, 1)
        assert set(sample[:, 0]).issubset(set(stream[:, 0]))

    def test_uniformity_of_retention(self) -> None:
        # Each element of a 200-element stream should be retained ~ capacity/200
        # of the time; check the first and second half are retained equally often.
        hits_first_half = 0
        hits_second_half = 0
        for seed in range(300):
            sampler = ReservoirSampler(capacity=10, dimensions=1, seed=seed)
            sampler.insert(np.arange(200, dtype=float).reshape(-1, 1))
            sample = sampler.sample()[:, 0]
            hits_first_half += int(np.sum(sample < 100))
            hits_second_half += int(np.sum(sample >= 100))
        ratio = hits_first_half / hits_second_half
        assert 0.8 < ratio < 1.25

    def test_reset(self) -> None:
        sampler = ReservoirSampler(capacity=5, dimensions=1)
        sampler.insert(np.ones((10, 1)))
        sampler.reset()
        assert sampler.size == 0
        assert sampler.seen == 0

    def test_reproducible_with_seed(self) -> None:
        stream = np.random.default_rng(3).uniform(size=(300, 1))
        a = ReservoirSampler(10, 1, seed=42)
        b = ReservoirSampler(10, 1, seed=42)
        a.insert(stream)
        b.insert(stream)
        np.testing.assert_array_equal(a.sample(), b.sample())


class TestDecayedReservoirSampler:
    def test_biased_towards_recent(self) -> None:
        recent_fraction = []
        for seed in range(50):
            sampler = DecayedReservoirSampler(capacity=50, dimensions=1, seed=seed)
            old = np.zeros((2000, 1))
            new = np.ones((2000, 1))
            sampler.insert(old)
            sampler.insert(new)
            recent_fraction.append(float(np.mean(sampler.sample()[:, 0])))
        # A uniform reservoir would keep ~50% old rows; the biased one keeps
        # almost exclusively recent rows after 2000 recent inserts (capacity 50).
        assert np.mean(recent_fraction) > 0.9

    def test_fills_before_replacing(self) -> None:
        sampler = DecayedReservoirSampler(capacity=10, dimensions=1, seed=0)
        sampler.insert(np.arange(5, dtype=float).reshape(-1, 1))
        assert sampler.size == 5
        np.testing.assert_array_equal(np.sort(sampler.sample()[:, 0]), np.arange(5.0))


class TestSlidingWindow:
    def test_invalid_parameters(self) -> None:
        with pytest.raises(InvalidParameterError):
            SlidingWindow(0, 1)
        with pytest.raises(InvalidParameterError):
            SlidingWindow(10, 0)

    def test_keeps_most_recent_rows_in_order(self) -> None:
        window = SlidingWindow(capacity=5, dimensions=1)
        window.insert(np.arange(8, dtype=float).reshape(-1, 1))
        contents = window.contents()[:, 0]
        np.testing.assert_array_equal(contents, [3.0, 4.0, 5.0, 6.0, 7.0])
        assert window.is_full
        assert window.seen == 8
        assert window.size == 5

    def test_partial_fill(self) -> None:
        window = SlidingWindow(capacity=10, dimensions=2)
        window.insert(np.ones((4, 2)))
        assert window.size == 4
        assert not window.is_full
        assert window.contents().shape == (4, 2)

    def test_wrong_dimension_raises(self) -> None:
        window = SlidingWindow(capacity=4, dimensions=2)
        with pytest.raises(InvalidParameterError):
            window.insert(np.zeros((2, 1)))

    def test_clear(self) -> None:
        window = SlidingWindow(capacity=4, dimensions=1)
        window.insert(np.ones((4, 1)))
        window.clear()
        assert window.size == 0
        assert window.seen == 4
        assert window.contents().shape == (0, 1)


class TestEmptyBatches:
    def test_reservoir_empty_insert_is_noop(self) -> None:
        sampler = ReservoirSampler(capacity=5, dimensions=2, seed=0)
        sampler.insert(np.empty((0, 2)))
        sampler.insert(np.empty(0))
        assert sampler.size == 0
        assert sampler.seen == 0

    def test_decayed_reservoir_empty_insert_is_noop(self) -> None:
        sampler = DecayedReservoirSampler(capacity=5, dimensions=2, seed=0)
        sampler.insert(np.empty((0, 2)))
        assert sampler.size == 0

    def test_window_empty_insert_is_noop(self) -> None:
        window = SlidingWindow(capacity=5, dimensions=1)
        window.insert(np.empty((0, 1)))
        window.insert(np.empty(0))
        assert window.size == 0
        assert window.seen == 0


class TestVectorizedEquivalence:
    def test_window_bulk_matches_row_at_a_time(self) -> None:
        data = np.arange(37, dtype=float).reshape(-1, 1)
        bulk = SlidingWindow(capacity=7, dimensions=1)
        rowwise = SlidingWindow(capacity=7, dimensions=1)
        bulk.insert(data)
        for row in data:
            rowwise.insert(row)
        np.testing.assert_array_equal(bulk.contents(), rowwise.contents())
        assert bulk.seen == rowwise.seen

    def test_window_inserts_crossing_wraparound(self) -> None:
        window = SlidingWindow(capacity=5, dimensions=1)
        window.insert(np.arange(3, dtype=float).reshape(-1, 1))
        window.insert(np.arange(3, 7, dtype=float).reshape(-1, 1))  # wraps
        np.testing.assert_array_equal(window.contents()[:, 0], [2.0, 3.0, 4.0, 5.0, 6.0])

    def test_window_oversized_batch_keeps_last_rows(self) -> None:
        window = SlidingWindow(capacity=4, dimensions=1)
        window.insert(np.ones((2, 1)))
        window.insert(np.arange(100, dtype=float).reshape(-1, 1))
        np.testing.assert_array_equal(window.contents()[:, 0], [96.0, 97.0, 98.0, 99.0])

    @pytest.mark.parametrize("sampler_type", [ReservoirSampler, DecayedReservoirSampler])
    def test_reservoir_bulk_matches_row_at_a_time(self, sampler_type) -> None:
        # One uniform variate is consumed per replacement row in stream
        # order, so the same seed yields the same reservoir for any batching.
        data = np.random.default_rng(3).uniform(size=(123, 2))
        bulk = sampler_type(capacity=11, dimensions=2, seed=42)
        rowwise = sampler_type(capacity=11, dimensions=2, seed=42)
        bulk.insert(data)
        for row in data:
            rowwise.insert(row)
        np.testing.assert_array_equal(bulk.sample(), rowwise.sample())
        assert bulk.seen == rowwise.seen == 123

    def test_wrong_width_empty_batch_still_raises(self) -> None:
        # A zero-row batch with an explicit wrong width is a schema bug, not
        # an empty no-op: surface it immediately.
        with pytest.raises(InvalidParameterError):
            ReservoirSampler(capacity=5, dimensions=2, seed=0).insert(np.empty((0, 5)))
        with pytest.raises(InvalidParameterError):
            SlidingWindow(capacity=5, dimensions=2).insert(np.empty((0, 5)))
