"""Tests for the experiment harness (runner and suite) at reduced scale."""

from __future__ import annotations

import pytest

from repro.baselines.histogram import EquiDepthHistogram
from repro.core.kde import KDESelectivityEstimator
from repro.data.generators import gaussian_mixture_table
from repro.experiments.runner import (
    EstimatorSpec,
    SeriesResult,
    TableResult,
    fit_timed,
    run_accuracy_comparison,
)
from repro.experiments.suite import (
    fig3_query_volume,
    fig5_drift,
    fig6_feedback,
    fig7_bandwidth_ablation,
    fig8_optimizer_impact,
    table1_accuracy_1d,
    table3_cost,
    table4_stream_cost,
)
from repro.workload.generators import UniformWorkload


class TestRunner:
    def test_estimator_spec_builds_fresh_instances(self) -> None:
        spec = EstimatorSpec("kde", lambda: KDESelectivityEstimator(sample_size=32))
        first = spec.build()
        second = spec.build()
        assert first is not second
        assert not first.is_fitted

    def test_fit_timed(self, small_table) -> None:
        estimator = EquiDepthHistogram(buckets=8)
        elapsed = fit_timed(estimator, small_table)
        assert elapsed >= 0.0
        assert estimator.is_fitted

    def test_run_accuracy_comparison(self, small_table) -> None:
        specs = [
            EstimatorSpec("hist", lambda: EquiDepthHistogram(buckets=16)),
            EstimatorSpec("kde", lambda: KDESelectivityEstimator(sample_size=64)),
        ]
        queries = UniformWorkload(small_table, volume_fraction=0.2, seed=1).generate(10)
        results = run_accuracy_comparison(small_table, specs, queries)
        assert set(results) == {"hist", "kde"}
        for result in results.values():
            assert result.query_count == 10

    def test_table_result_helpers(self) -> None:
        result = TableResult("t", ["name", "value"], [["a", 1.0], ["b", 2.0]])
        assert result.column("value") == [1.0, 2.0]
        assert result.row_by("name", "b") == ["b", 2.0]
        assert result.row_by("name", "zzz") is None
        assert "t" in result.render()

    def test_series_result_helpers(self) -> None:
        result = SeriesResult("f", "x", [1, 2])
        result.add_point("s", 0.5)
        result.add_point("s", 0.7)
        assert result.series["s"] == [0.5, 0.7]
        assert "0.7" in result.render(precision=1)


class TestSuiteSmallScale:
    """Each experiment callable runs end to end at toy scale and has sane output."""

    def test_table1(self) -> None:
        result = table1_accuracy_1d(rows=1500, queries=15, budget_bytes=2048)
        assert len(result.rows) == 3 * 9  # datasets × estimator line-up
        labels = set(result.column("estimator"))
        assert {"ade_adaptive", "ade_streaming", "equidepth", "sampling"}.issubset(labels)
        for value in result.column("rel_err_mean"):
            assert value >= 0.0

    def test_table3_reports_costs(self) -> None:
        result = table3_cost(rows=2000, queries=15, budget_bytes=2048, dimensions=2)
        assert all(row[1] >= 0 for row in result.rows)  # build seconds
        assert all(row[2] > 0 for row in result.rows)  # throughput
        assert all(row[3] > 0 for row in result.rows)  # bytes

    def test_table4_budget_column(self) -> None:
        result = table4_stream_cost(
            stream_rows=2000, batch_size=500, budgets=(16, 32), queries=10
        )
        assert set(result.column("budget")) == {16, 32}

    def test_fig3_series_lengths_match(self) -> None:
        result = fig3_query_volume(rows=1500, queries=15, volumes=(0.01, 0.1))
        for series in result.series.values():
            assert len(series) == 2

    def test_fig5_drift_structure(self) -> None:
        result = fig5_drift(
            batches=12, batch_size=100, queries=10, budget=32,
            reference_window=400, evaluate_every=4,
        )
        assert result.x_values  # at least one evaluation point
        assert "ade_decayed" in result.series
        assert "static_kde" in result.series

    def test_fig6_feedback_improves(self) -> None:
        result = fig6_feedback(rows=2500, feedback_steps=(0, 60), holdout_queries=30)
        feedback_series = result.series["feedback_ade"]
        static_series = result.series["static_kde"]
        # With feedback the error after 60 observations is no worse than at 0,
        # while the static baseline stays constant by construction.
        assert feedback_series[-1] <= feedback_series[0] * 1.1
        assert static_series[0] == pytest.approx(static_series[-1])

    def test_fig7_contains_all_rules(self) -> None:
        result = fig7_bandwidth_ablation(rows=1500, queries=20, sample_size=128)
        rules = set(result.column("rule"))
        assert {"scott", "silverman", "lscv", "mlcv", "adaptive_scott", "adaptive_lscv"} == rules
        for bandwidth in result.column("bandwidth"):
            assert bandwidth > 0

    def test_fig8_true_selectivity_has_unit_regret(self) -> None:
        result = fig8_optimizer_impact(fact_rows=3000, dimension_rows=800, trials=3)
        true_row = result.row_by("estimator", "true_selectivity")
        assert true_row is not None
        assert true_row[1] == pytest.approx(1.0)
        for row in result.rows:
            assert row[1] >= 1.0 - 1e-9  # mean regret can never beat the optimum


class TestBudgetedSpecs:
    def test_memory_budgets_are_roughly_respected(self) -> None:
        from repro.core.estimator import FLOAT_BYTES
        from repro.experiments.suite import _budgeted_specs

        table = gaussian_mixture_table(3000, dimensions=2, seed=5)
        budget = 4096
        for spec in _budgeted_specs(budget, dimensions=2):
            estimator = spec.build()
            estimator.fit(table)
            if spec.label == "independence":
                continue  # deliberately tiny
            assert estimator.memory_bytes() <= budget * 1.5 + 16 * FLOAT_BYTES, spec.label
