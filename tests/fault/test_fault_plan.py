"""The fault-injection substrate: scheduling, determinism, inertness."""

from __future__ import annotations

import copy
import pickle

import pytest

from repro.core.errors import InjectedFault, InvalidParameterError
from repro.fault.plan import (
    NULL_PLAN,
    FaultPlan,
    default_fault_plan,
    inject,
    mutate_bytes,
    random_plan,
    set_default_fault_plan,
    skew_clock,
    use_fault_plan,
)


class TestScheduling:
    def test_every_and_after_compose(self) -> None:
        plan = FaultPlan()
        plan.arm("p", action="raise", after=2, every=3)
        fired = []
        for hit in range(1, 12):
            try:
                plan.inject("p")
            except InjectedFault:
                fired.append(hit)
        assert fired == [3, 6, 9]

    def test_at_pins_exact_hits(self) -> None:
        plan = FaultPlan()
        plan.arm("p", action="raise", at=(2, 5))
        fired = []
        for hit in range(1, 8):
            try:
                plan.inject("p")
            except InjectedFault:
                fired.append(hit)
        assert fired == [2, 5]

    def test_limit_caps_firings(self) -> None:
        plan = FaultPlan()
        rule = plan.arm("p", action="raise", limit=2)
        fired = 0
        for _ in range(10):
            try:
                plan.inject("p")
            except InjectedFault:
                fired += 1
        assert fired == 2
        assert rule.fired == 2

    def test_glob_pattern_matches_points(self) -> None:
        plan = FaultPlan()
        plan.arm("persist.*", action="raise")
        with pytest.raises(InjectedFault):
            plan.inject("persist.publish.write")
        plan.inject("serve.estimate")  # no match: silent

    def test_probabilistic_rules_are_seed_deterministic(self) -> None:
        def firings(seed: int) -> list[int]:
            plan = FaultPlan(seed=seed)
            plan.arm("p", action="raise", probability=0.3)
            out = []
            for hit in range(1, 101):
                try:
                    plan.inject("p")
                except InjectedFault:
                    out.append(hit)
            return out

        first = firings(7)
        assert firings(7) == first
        assert firings(8) != first
        assert 10 < len(first) < 60  # roughly the armed rate

    def test_per_point_rngs_are_independent(self) -> None:
        plan = FaultPlan(seed=1)
        plan.arm("a", action="raise", probability=0.5)
        plan.arm("b", action="raise", probability=0.5)
        a_fired, b_fired = [], []
        for hit in range(1, 41):
            for point, out in (("a", a_fired), ("b", b_fired)):
                try:
                    plan.inject(point)
                except InjectedFault:
                    out.append(hit)
        assert a_fired != b_fired  # distinct per-point streams

    def test_reset_counters_replays_the_schedule(self) -> None:
        plan = FaultPlan()
        plan.arm("p", action="raise", at=(2,))
        plan.inject("p")
        with pytest.raises(InjectedFault):
            plan.inject("p")
        plan.reset_counters()
        plan.inject("p")
        with pytest.raises(InjectedFault):
            plan.inject("p")


class TestActions:
    def test_raise_carries_point_name(self) -> None:
        plan = FaultPlan()
        plan.arm("p", action="raise", message="boom")
        with pytest.raises(InjectedFault) as excinfo:
            plan.inject("p")
        assert excinfo.value.point == "p"

    def test_torn_truncates_payload(self) -> None:
        plan = FaultPlan()
        plan.arm("p", action="torn", fraction=0.25)
        data = bytes(range(100))
        torn = plan.mutate_bytes("p", data)
        assert torn == data[:25]

    def test_bitflip_flips_exactly_n_bits(self) -> None:
        plan = FaultPlan()
        plan.arm("p", action="bitflip", flips=3)
        data = bytes(64)
        flipped = plan.mutate_bytes("p", data)
        assert len(flipped) == len(data)
        diff_bits = sum(bin(a ^ b).count("1") for a, b in zip(data, flipped))
        assert 1 <= diff_bits <= 3  # positions may collide

    def test_skew_offsets_clock(self) -> None:
        plan = FaultPlan()
        plan.arm("p", action="skew", skew=-5.0)
        assert plan.skew_clock("p", 100.0) == 95.0
        assert plan.skew_clock("other", 100.0) == 100.0

    def test_unknown_action_rejected(self) -> None:
        with pytest.raises(InvalidParameterError):
            FaultPlan().arm("p", action="explode")

    def test_unknown_option_rejected_as_typed_error(self) -> None:
        plan = FaultPlan()
        with pytest.raises(InvalidParameterError, match="unknown fault rule option"):
            plan.arm("p", action="raise", atfer=2)  # typo'd keyword
        assert not plan.rules  # nothing was armed

    def test_scalar_at_is_coerced(self) -> None:
        plan = FaultPlan()
        rule = plan.arm("p", action="raise", at=2)
        assert rule.at == (2,)
        plan.inject("p")
        with pytest.raises(InjectedFault):
            plan.inject("p")

    def test_malformed_at_rejected_as_typed_error(self) -> None:
        with pytest.raises(InvalidParameterError, match="at must be"):
            FaultPlan().arm("p", action="raise", at=object())
        with pytest.raises(InvalidParameterError):
            FaultPlan().arm("p", action="raise", at=("x", "y"))


class TestDefaultPlan:
    # These run with whatever plan the session armed (the CI fault-injection
    # leg installs a random one), so they assert *relative* to the ambient
    # default instead of assuming process-wide inertness.

    def test_null_plan_is_inert(self) -> None:
        with use_fault_plan(None):
            assert default_fault_plan() is NULL_PLAN
            inject("any.point")  # no-op
            assert mutate_bytes("any.point", b"abc") == b"abc"
            assert skew_clock("any.point", 3.0) == 3.0

    def test_null_plan_refuses_arming(self) -> None:
        with pytest.raises(InvalidParameterError):
            NULL_PLAN.arm("p")

    def test_use_fault_plan_scopes_and_restores(self) -> None:
        ambient = default_fault_plan()
        plan = FaultPlan()
        plan.arm("p", action="raise")
        with use_fault_plan(plan):
            assert default_fault_plan() is plan
            with pytest.raises(InjectedFault):
                inject("p")
        assert default_fault_plan() is ambient

    def test_set_default_returns_previous(self) -> None:
        ambient = default_fault_plan()
        plan = FaultPlan()
        previous = set_default_fault_plan(plan)
        try:
            assert previous is ambient
            assert default_fault_plan() is plan
        finally:
            set_default_fault_plan(previous)
        assert default_fault_plan() is ambient


class TestTravelSemantics:
    def test_deepcopy_returns_same_plan(self) -> None:
        plan = FaultPlan()
        assert copy.deepcopy(plan) is plan

    def test_pickle_degrades_to_null_plan(self) -> None:
        plan = FaultPlan(seed=3)
        plan.arm("p", action="raise")
        clone = pickle.loads(pickle.dumps(plan))
        assert clone is NULL_PLAN  # a pool worker never double-counts hits


class TestRandomPlan:
    def test_covers_recoverable_points(self) -> None:
        plan = random_plan(0.01, seed=5)
        patterns = {rule.pattern for rule in plan.rules}
        assert "persist.publish.write" in patterns
        assert "shard.task" in patterns

    def test_describe_reports_accounting(self) -> None:
        plan = FaultPlan(seed=2)
        plan.arm("p", action="raise", at=(1,))
        with pytest.raises(InjectedFault):
            plan.inject("p")
        described = plan.describe()
        assert described["hits"] == {"p": 1}
        assert described["fired"] == {"p": 1}
