"""AdmissionController: token buckets, tail-driven shedding, server wiring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import AdmissionRejected, InvalidParameterError
from repro.core.streaming import StreamingADE
from repro.engine.table import Table
from repro.obs.collector import TelemetryCollector
from repro.obs.metrics import MetricsRegistry
from repro.serve import AdmissionController, EstimatorServer, TenantQuota
from repro.workload.queries import RangeQuery


class TestTenantQuota:
    def test_validation(self) -> None:
        with pytest.raises(InvalidParameterError, match="rate"):
            TenantQuota("t", rate=0.0)
        with pytest.raises(InvalidParameterError, match="burst"):
            TenantQuota("t", rate=1.0, burst=0.5)
        with pytest.raises(InvalidParameterError, match="slo_p99"):
            TenantQuota("t", slo_p99=-1.0)

    def test_capacity_defaults_to_twice_rate(self) -> None:
        assert TenantQuota("t", rate=5.0).capacity == 10.0
        assert TenantQuota("t", rate=5.0, burst=3.0).capacity == 3.0
        assert TenantQuota("t").capacity == 1.0


class TestControllerValidation:
    def test_parameter_ranges(self) -> None:
        for kwargs in (
            dict(floor=0.0),
            dict(floor=1.5),
            dict(backoff=1.0),
            dict(recovery=1.0),
            dict(window=0.0),
            dict(quantum=0),
            dict(initial_allowance=0.0),
        ):
            with pytest.raises(InvalidParameterError):
                AdmissionController(**kwargs)

    def test_duplicate_quota_rejected(self) -> None:
        with pytest.raises(InvalidParameterError, match="duplicate"):
            AdmissionController([TenantQuota("t"), TenantQuota("t")])


class TestTokenBucket:
    def test_burst_then_refusal(self) -> None:
        controller = AdmissionController([TenantQuota("t", rate=1.0, burst=2.0)])
        controller.admit("t", now=0.0)
        controller.admit("t", now=0.0)
        with pytest.raises(AdmissionRejected) as err:
            controller.admit("t", now=0.0)
        assert (err.value.tenant, err.value.op, err.value.reason) == ("t", "query", "tokens")

    def test_refill_at_rate(self) -> None:
        controller = AdmissionController([TenantQuota("t", rate=2.0, burst=1.0)])
        controller.admit("t", now=0.0)
        with pytest.raises(AdmissionRejected):
            controller.admit("t", now=0.1)
        controller.admit("t", now=0.6)  # 0.5s at 2/s refills the one token

    def test_unquoted_tenant_unthrottled(self) -> None:
        controller = AdmissionController([TenantQuota("t", rate=1.0)])
        for _ in range(100):
            controller.admit("other", now=0.0)


def breach_collector(latency: float) -> TelemetryCollector:
    """A collector whose store shows tenant 'v' at a trailing p99 ≈ latency."""
    registry = MetricsRegistry()
    collector = TelemetryCollector(registry)
    collector.tick(now=0.0)
    for i in range(1, 4):
        registry.histogram("serve.request_seconds", tenant="v").record(latency)
        collector.tick(now=float(i))
    return collector


class TestShedding:
    def make(self, slo=1e-3, **kwargs) -> AdmissionController:
        return AdmissionController([TenantQuota("v", slo_p99=slo)], **kwargs)

    def test_update_backs_off_under_breach_and_recovers(self) -> None:
        controller = self.make(slo=1e-3, floor=0.1, backoff=0.5, recovery=2.0)
        controller.attach_store(breach_collector(10e-3).store)
        assert controller.update() == pytest.approx(0.5)
        assert controller.update() == pytest.approx(0.25)
        for _ in range(10):
            controller.update()
        assert controller.write_allowance == pytest.approx(0.1)  # clamped at floor
        controller.attach_store(breach_collector(1e-5).store)  # healthy tails
        assert controller.update() == pytest.approx(0.2)
        for _ in range(10):
            controller.update()
        assert controller.write_allowance == 1.0  # clamped at 1

    def test_slo_status_reports_breach(self) -> None:
        controller = self.make(slo=1e-3)
        controller.attach_store(breach_collector(10e-3).store)
        status = controller.slo_status()
        assert status["v"]["breach"] is True
        assert status["v"]["trailing_p99"] > status["v"]["target_p99"]

    def test_sheds_only_writes_of_unprotected_tenants(self) -> None:
        controller = self.make(floor=0.5, initial_allowance=0.5)
        # Queries are never shed; protected-tenant writes are never shed.
        for _ in range(10):
            controller.admit("bulk", "query", now=0.0)
            controller.admit("v", "ingest", now=0.0)
        with pytest.raises(AdmissionRejected) as err:
            controller.admit("bulk", "ingest", now=0.0)
        assert err.value.reason == "shed"

    def test_even_spread_at_quantum_one(self) -> None:
        controller = self.make(floor=0.5, initial_allowance=0.5, quantum=1)
        admitted = []
        for i in range(10):
            try:
                controller.admit("bulk", "publish", now=0.0)
                admitted.append(i)
            except AdmissionRejected:
                pass
        assert admitted == [1, 3, 5, 7, 9]  # every other write

    def test_quantum_clusters_admits_into_bursts(self) -> None:
        controller = self.make(floor=0.5, initial_allowance=0.5, quantum=4)
        pattern = []
        for _ in range(40):
            try:
                controller.admit("bulk", "publish", now=0.0)
                pattern.append(True)
            except AdmissionRejected:
                pattern.append(False)
        # Same long-run fraction as quantum=1, arriving as bursts: runs of
        # consecutive admits at least quantum long.
        assert 0.3 <= sum(pattern) / len(pattern) <= 0.6
        runs = []
        length = 0
        for admitted in pattern + [False]:
            if admitted:
                length += 1
            elif length:
                runs.append(length)
                length = 0
        assert runs and max(runs) >= 4

    def test_determinism(self) -> None:
        def pattern():
            controller = self.make(floor=0.4, initial_allowance=0.4, quantum=3)
            out = []
            for _ in range(30):
                try:
                    controller.admit("bulk", "ingest", now=0.0)
                    out.append(1)
                except AdmissionRejected:
                    out.append(0)
            return out

        assert pattern() == pattern()

    def test_full_allowance_admits_everything(self) -> None:
        controller = self.make()  # initial allowance 1.0, no store → no breach
        for _ in range(50):
            controller.admit("bulk", "ingest", now=0.0)

    def test_bind_updates_on_tick(self) -> None:
        registry = MetricsRegistry()
        collector = TelemetryCollector(registry)
        controller = self.make(slo=1e-3, backoff=0.5).bind(collector)
        collector.tick(now=0.0)
        registry.histogram("serve.request_seconds", tenant="v").record(0.1)
        collector.tick(now=1.0)
        assert controller.write_allowance == pytest.approx(0.5)

    def test_decisions_counted(self) -> None:
        registry = MetricsRegistry()
        controller = AdmissionController(
            [TenantQuota("t", rate=1.0, burst=1.0)], metrics=registry
        )
        controller.admit("t", now=0.0)
        with pytest.raises(AdmissionRejected):
            controller.admit("t", now=0.0)
        snap = registry.snapshot()
        assert snap["counters"]["admission.allowed{op=query,tenant=t}"]["value"] == 1
        key = "admission.rejected{op=query,reason=tokens,tenant=t}"
        assert snap["counters"][key]["value"] == 1
        assert snap["gauges"]["admission.write_allowance"]["value"] == 1.0

    def test_describe(self) -> None:
        controller = self.make(quantum=3)
        described = controller.describe()
        assert described["quotas"]["v"]["slo_p99"] == 1e-3
        assert described["quantum"] == 3
        assert described["write_allowance"] == 1.0


class TestServerWiring:
    @pytest.fixture()
    def served(self):
        rng = np.random.default_rng(11)
        table = Table.from_array("t", rng.normal(size=(500, 2)), column_names=["x", "y"])
        model = StreamingADE(max_kernels=32).fit(table)
        queries = [RangeQuery({"x": (-1.0, 1.0), "y": (-1.0, 1.0)})]
        return model, queries

    def test_no_admission_is_default_noop(self, served) -> None:
        model, queries = served
        server = EstimatorServer(model)
        assert server.admission is None
        server.estimate_batch(queries, tenant="anyone")

    def test_admission_gates_queries(self, served) -> None:
        model, queries = served
        controller = AdmissionController([TenantQuota("t", rate=1.0, burst=1.0)])
        server = EstimatorServer(model, admission=controller)
        server.estimate_batch(queries, tenant="t", now=0.0)
        with pytest.raises(AdmissionRejected):
            server.estimate_batch(queries, tenant="t", now=0.0)
        server.estimate_batch(queries, tenant="t", now=5.0)

    def test_estimate_batch_many_forwards_tenant(self, served) -> None:
        model, queries = served
        controller = AdmissionController([TenantQuota("t", rate=1.0, burst=1.0)])
        server = EstimatorServer(model, admission=controller)
        with pytest.raises(AdmissionRejected):
            # Two workloads against a one-token bucket: the second is refused.
            server.estimate_batch_many([queries, queries], tenant="t")


class TestClockSkew:
    """The ``admission.clock`` fault hook: skewed time degrades refill but
    never corrupts the buckets."""

    def test_backwards_clock_is_a_noop_refill(self) -> None:
        from repro.fault.plan import FaultPlan, use_fault_plan

        controller = AdmissionController([TenantQuota("t", rate=1.0, burst=2.0)])
        controller.admit("t", now=10.0)  # bucket created at t=10, one token left

        plan = FaultPlan()
        plan.arm("admission.clock", action="skew", skew=-100.0)
        with use_fault_plan(plan):
            # Skewed to t=-90: no refill (time never goes backwards for the
            # bucket), but the remaining token is still spendable.
            controller.admit("t", now=10.0)
        with pytest.raises(AdmissionRejected):
            controller.admit("t", now=10.0)
        # Honest time resumes: refill proceeds from the last-seen timestamp.
        controller.admit("t", now=12.0)

    def test_forward_skew_refills_early(self) -> None:
        from repro.fault.plan import FaultPlan, use_fault_plan

        controller = AdmissionController([TenantQuota("t", rate=1.0, burst=1.0)])
        controller.admit("t", now=0.0)
        plan = FaultPlan()
        plan.arm("admission.clock", action="skew", skew=50.0)
        with use_fault_plan(plan):
            controller.admit("t", now=0.0)  # skewed far forward: bucket full
