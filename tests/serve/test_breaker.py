"""Circuit breaker: state machine and the server's degraded serving path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import (
    CircuitOpenError,
    InvalidParameterError,
    NotFittedError,
)
from repro.core.kde import KDESelectivityEstimator
from repro.data.generators import gaussian_mixture_table
from repro.fault.plan import FaultPlan, use_fault_plan
from repro.obs.metrics import MetricsRegistry
from repro.serve.breaker import CircuitBreaker
from repro.serve.server import EstimatorServer
from repro.workload.generators import UniformWorkload

TABLE = gaussian_mixture_table(rows=1500, dimensions=2, seed=21, name="breaker")


def _queries(count: int, seed: int = 3):
    return UniformWorkload(TABLE, volume_fraction=0.2, seed=seed).generate(count)


class TestStateMachine:
    def test_trips_after_consecutive_failures(self) -> None:
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=10.0)
        for _ in range(2):
            breaker.record_failure(now=0.0)
        assert breaker.state == "closed"
        breaker.record_failure(now=0.0)
        assert breaker.state == "open"
        assert breaker.trips == 1

    def test_success_resets_the_consecutive_count(self) -> None:
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure(now=0.0)
        breaker.record_success(now=0.0)
        breaker.record_failure(now=0.0)
        assert breaker.state == "closed"  # never two in a row

    def test_open_sheds_until_timeout_then_half_opens(self) -> None:
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=5.0)
        breaker.record_failure(now=0.0)
        assert breaker.before_call(now=1.0) == "shed"
        assert breaker.before_call(now=4.9) == "shed"
        assert breaker.before_call(now=5.0) == "attempt"
        assert breaker.state == "half_open"

    def test_probe_successes_close(self) -> None:
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=1.0, probe_successes=2
        )
        breaker.record_failure(now=0.0)
        assert breaker.before_call(now=2.0) == "attempt"
        breaker.record_success(now=2.0)
        assert breaker.state == "half_open"  # one probe is not enough
        breaker.record_success(now=2.1)
        assert breaker.state == "closed"

    def test_probe_failure_reopens(self) -> None:
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0)
        breaker.record_failure(now=0.0)
        assert breaker.before_call(now=2.0) == "attempt"
        breaker.record_failure(now=2.0)
        assert breaker.state == "open"
        assert breaker.trips == 2
        # The open window restarts from the probe failure.
        assert breaker.before_call(now=2.5) == "shed"
        assert breaker.before_call(now=3.0) == "attempt"

    def test_straggler_failure_extends_open_window(self) -> None:
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0)
        breaker.record_failure(now=0.0)
        breaker.record_failure(now=0.9)  # in-flight call failing while open
        assert breaker.trips == 1
        assert breaker.before_call(now=1.5) == "shed"
        assert breaker.before_call(now=2.0) == "attempt"

    def test_reset_closes_but_keeps_trips(self) -> None:
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure(now=0.0)
        breaker.reset()
        assert breaker.state == "closed"
        assert breaker.trips == 1

    def test_describe_and_state_code(self) -> None:
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0)
        assert breaker.state_code == 0
        breaker.record_failure(now=0.0)
        assert breaker.state_code == 1
        described = breaker.describe()
        assert described["state"] == "open"
        assert described["trips"] == 1

    def test_parameter_validation(self) -> None:
        with pytest.raises(InvalidParameterError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(InvalidParameterError):
            CircuitBreaker(reset_timeout=-1.0)
        with pytest.raises(InvalidParameterError):
            CircuitBreaker(probe_successes=0)


class TestServerIntegration:
    def _server(self, cache_size: int = 0, with_fallback: bool = True):
        model = KDESelectivityEstimator(sample_size=150).fit(TABLE)
        fallback = (
            KDESelectivityEstimator(sample_size=60, seed=9).fit(TABLE)
            if with_fallback
            else None
        )
        metrics = MetricsRegistry()
        breaker = CircuitBreaker(
            failure_threshold=2, reset_timeout=1.0, probe_successes=1
        )
        server = EstimatorServer(
            model,
            cache_size=cache_size,
            metrics=metrics,
            breaker=breaker,
            fallback=fallback,
        )
        return server, model, breaker, metrics

    def test_fallback_requires_breaker(self) -> None:
        model = KDESelectivityEstimator(sample_size=60).fit(TABLE)
        with pytest.raises(InvalidParameterError):
            EstimatorServer(model, fallback=model)

    def test_fallback_must_be_fitted_and_column_compatible(self) -> None:
        model = KDESelectivityEstimator(sample_size=60).fit(TABLE)
        breaker = CircuitBreaker()
        with pytest.raises(NotFittedError):
            EstimatorServer(
                model, breaker=breaker, fallback=KDESelectivityEstimator()
            )
        other = KDESelectivityEstimator(sample_size=60).fit(
            TABLE, columns=[TABLE.column_names[0]]
        )
        with pytest.raises(InvalidParameterError):
            EstimatorServer(model, breaker=breaker, fallback=other)

    def test_stale_results_served_while_open(self) -> None:
        server, model, breaker, metrics = self._server()
        queries = _queries(5)
        healthy = server.estimate_batch(queries, now=0.0)

        plan = FaultPlan(seed=4)
        plan.arm("serve.estimate", action="raise")
        with use_fault_plan(plan):
            degraded = server.estimate_batch(queries, now=0.1)
        np.testing.assert_array_equal(degraded, healthy)
        assert metrics.counter("serve.stale_served").value == 1
        assert metrics.counter("serve.model_faults").value == 1

    def test_fallback_served_for_uncached_plans_while_open(self) -> None:
        server, model, breaker, metrics = self._server()
        plan = FaultPlan(seed=4)
        plan.arm("serve.estimate", action="raise")
        fresh = _queries(5, seed=77)  # never served healthily: no last-good
        with use_fault_plan(plan):
            result = server.estimate_batch(fresh, now=0.0)
        np.testing.assert_array_equal(
            result, server.fallback.estimate_batch(fresh)
        )
        assert metrics.counter("serve.fallback_served").value == 1

    def test_shed_without_fallback_raises_circuit_open(self) -> None:
        server, model, breaker, metrics = self._server(with_fallback=False)
        fresh = _queries(4, seed=78)
        plan = FaultPlan(seed=4)
        plan.arm("serve.estimate", action="raise")
        with use_fault_plan(plan):
            with pytest.raises(CircuitOpenError):
                server.estimate_batch(fresh, now=0.0)
            with pytest.raises(CircuitOpenError):
                server.estimate_batch(fresh, now=0.1)
            assert breaker.state == "open"  # threshold=2 consecutive faults
            # While open the model is not called at all: shed immediately.
            with pytest.raises(CircuitOpenError):
                server.estimate_batch(fresh, now=0.2)
        assert metrics.counter("serve.requests_shed").value == 3

    def test_breaker_recovers_through_probes(self) -> None:
        server, model, breaker, metrics = self._server()
        queries = _queries(5)
        healthy = server.estimate_batch(queries, now=0.0)

        plan = FaultPlan(seed=4)
        plan.arm("serve.estimate", action="raise", limit=2)
        with use_fault_plan(plan):
            server.estimate_batch(queries, now=0.1)
            server.estimate_batch(queries, now=0.2)  # second fault: trips
            assert breaker.state == "open"
            # Before the timeout: still shed (stale answer, model untouched).
            server.estimate_batch(queries, now=0.5)
            # Past the timeout: the probe goes through, fault budget is
            # exhausted, one success closes (probe_successes=1).
            recovered = server.estimate_batch(queries, now=1.5)
        assert breaker.state == "closed"
        np.testing.assert_array_equal(recovered, healthy)

    def test_publish_resets_the_breaker(self) -> None:
        server, model, breaker, metrics = self._server()
        plan = FaultPlan(seed=4)
        plan.arm("serve.estimate", action="raise")
        with use_fault_plan(plan):
            server.estimate_batch(_queries(3), now=0.0)
            server.estimate_batch(_queries(3), now=0.1)
        assert breaker.state == "open"
        replacement = KDESelectivityEstimator(sample_size=80).fit(TABLE)
        server.publish(replacement)
        assert breaker.state == "closed"
        assert breaker.trips == 1  # monitoring history survives the reset

    def test_breaker_gauges_exported(self) -> None:
        server, model, breaker, metrics = self._server()
        gauges = metrics.snapshot()["gauges"]
        assert gauges["serve.breaker_state"]["value"] == 0.0
        assert "serve.breaker_trips" in gauges

    def test_stats_include_breaker(self) -> None:
        server, model, breaker, metrics = self._server()
        assert server.stats()["breaker"]["state"] == "closed"

    def test_cached_hits_bypass_the_breaker(self) -> None:
        """Plan-cache hits never touch the model, so they are served even
        with the model hard-down and the breaker open."""
        server, model, breaker, metrics = self._server(cache_size=32)
        queries = _queries(5)
        healthy = server.estimate_batch(queries, now=0.0)  # miss: fills cache
        plan = FaultPlan(seed=4)
        plan.arm("serve.estimate", action="raise")
        with use_fault_plan(plan):
            hit = server.estimate_batch(queries, now=0.1)
        np.testing.assert_array_equal(hit, healthy)
        assert breaker.state == "closed"  # the model was never called
        assert metrics.counter("serve.model_faults").value == 0
