"""EstimatorServer: caching, copy-on-write swaps, and ingest-while-serve.

The concurrency hammer is the heart of this suite: a writer thread keeps
checking out a private model copy, ingesting a deterministic batch sequence
and publishing new generations, while reader threads hammer
``estimate_batch``.  Because every built-in estimator is deterministic, each
generation's correct answer is known from a serial replay — so every result a
reader ever observes must be *bitwise* one of the published generations'
answers (no torn reads), tagged with the generation that produced it, and the
final served state must equal the serial replay of the whole stream.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.errors import InvalidParameterError, NotFittedError
from repro.core.kde import KDESelectivityEstimator
from repro.core.streaming import StreamingADE
from repro.data.generators import gaussian_mixture_table
from repro.engine.table import Table
from repro.ensemble import EnsembleEstimator
from repro.persist.store import ModelStore
from repro.serve import EstimatorServer
from repro.workload.generators import UniformWorkload
from repro.workload.queries import compile_queries


@pytest.fixture(scope="module")
def table() -> Table:
    return gaussian_mixture_table(rows=3000, dimensions=2, components=3, seed=3, name="t")


@pytest.fixture(scope="module")
def plan(table):
    queries = UniformWorkload(table, volume_fraction=0.2, seed=5).generate(40)
    return compile_queries(queries, table.column_names)


@pytest.fixture()
def server(table) -> EstimatorServer:
    return EstimatorServer(StreamingADE(max_kernels=32).fit(table), cache_size=16)


class TestServing:
    def test_requires_fitted_model(self) -> None:
        with pytest.raises(NotFittedError):
            EstimatorServer(KDESelectivityEstimator())

    def test_matches_bare_estimator(self, server, table, plan) -> None:
        bare = StreamingADE(max_kernels=32).fit(table)
        np.testing.assert_array_equal(server.estimate_batch(plan), bare.estimate_batch(plan))

    def test_repeat_hits_cache_with_identical_result(self, server, plan) -> None:
        first = server.estimate_batch(plan)
        second = server.estimate_batch(plan)
        np.testing.assert_array_equal(first, second)
        info = server.cache_info()
        assert info.hits == 1 and info.misses == 1
        assert info.hit_rate == 0.5

    def test_empty_batch_skips_model_and_cache(self, server) -> None:
        """Zero-row plans answer an empty vector without polluting the cache."""
        for empty in ([], compile_queries([], server.columns)):
            result = server.estimate_batch(empty)
            assert result.shape == (0,)
            assert result.dtype == np.float64
        info = server.cache_info()
        assert info.size == 0
        assert info.hits == 0 and info.misses == 0

    def test_cached_result_is_read_only(self, server, plan) -> None:
        server.estimate_batch(plan)
        result = server.estimate_batch(plan)
        with pytest.raises(ValueError):
            result[0] = 0.5

    def test_cache_disabled(self, table, plan) -> None:
        server = EstimatorServer(StreamingADE(max_kernels=32).fit(table), cache_size=0)
        server.estimate_batch(plan)
        server.estimate_batch(plan)
        info = server.cache_info()
        assert info.hits == 0 and info.size == 0

    def test_cache_is_lru_bounded(self, table) -> None:
        server = EstimatorServer(StreamingADE(max_kernels=32).fit(table), cache_size=2)
        workloads = [
            UniformWorkload(table, volume_fraction=0.2, seed=s).generate(5)
            for s in range(4)
        ]
        for workload in workloads:
            server.estimate_batch(workload)
        assert server.cache_info().size == 2

    def test_publish_swaps_model_and_invalidates_cache(self, server, table, plan) -> None:
        stale = server.estimate_batch(plan)
        writer = server.checkout()
        writer.insert(np.random.default_rng(1).normal(loc=9.0, size=(500, 2)))
        writer.flush()
        generation = server.publish(writer)
        assert generation == 2 == server.generation
        fresh = server.estimate_batch(plan)
        assert not np.array_equal(fresh, stale)
        expected = StreamingADE(max_kernels=32).fit(table)
        expected.flush()  # the server flushed at construction: align chunk boundaries
        expected.insert(np.random.default_rng(1).normal(loc=9.0, size=(500, 2)))
        expected.flush()
        np.testing.assert_array_equal(fresh, expected.estimate_batch(plan))
        # Only current-generation entries survive the swap.
        assert all(key[0] == server.generation for key in server._cache)

    def test_checkout_is_isolated_from_readers(self, server, plan) -> None:
        before = np.array(server.estimate_batch(plan))
        writer = server.checkout()
        writer.insert(np.full((400, 2), 50.0))
        writer.flush()
        np.testing.assert_array_equal(server.estimate_batch(plan), before)

    def test_publish_rejects_unfitted(self, server) -> None:
        with pytest.raises(NotFittedError):
            server.publish(StreamingADE(max_kernels=16))

    def test_estimate_batch_many(self, server, table) -> None:
        workloads = [
            UniformWorkload(table, volume_fraction=0.2, seed=s).generate(10)
            for s in range(6)
        ]
        results = server.estimate_batch_many(workloads, max_workers=3)
        for workload, result in zip(workloads, results):
            np.testing.assert_array_equal(result, server.estimate_batch(workload))
        with pytest.raises(InvalidParameterError):
            server.estimate_batch_many(workloads, max_workers=0)

    def test_publish_writes_through_to_store(self, table, tmp_path) -> None:
        store = ModelStore(tmp_path / "models")
        server = EstimatorServer(
            StreamingADE(max_kernels=32).fit(table), store=store, model_name="t"
        )
        writer = server.checkout()
        writer.insert(np.zeros((10, 2)))
        server.publish(writer)
        assert store.versions("t") == [1]
        loaded = store.load("t")
        assert loaded.row_count == server.model.row_count


class TestIngestWhileServe:
    """Satellite: hammer the server with a writer and concurrent readers."""

    BATCHES = 15
    READERS = 3

    @staticmethod
    def _batches() -> list[np.ndarray]:
        rng = np.random.default_rng(42)
        return [
            rng.normal(loc=0.4 * i, scale=1.0, size=(120, 2))
            for i in range(TestIngestWhileServe.BATCHES)
        ]

    def test_concurrent_ingest_and_serve(self, table, plan) -> None:
        batches = self._batches()

        # Serial replay: the ground truth estimates of every generation.
        replay = StreamingADE(max_kernels=32).fit(table)
        replay.flush()
        expected: dict[int, bytes] = {1: replay.estimate_batch(plan).tobytes()}
        for i, batch in enumerate(batches):
            replay.insert(batch)
            replay.flush()
            expected[i + 2] = replay.estimate_batch(plan).tobytes()

        server = EstimatorServer(StreamingADE(max_kernels=32).fit(table), cache_size=16)
        errors: list[str] = []
        observed: list[tuple[int, bytes]] = []
        observed_lock = threading.Lock()
        done = threading.Event()

        def writer() -> None:
            try:
                for batch in batches:
                    model = server.checkout()
                    model.insert(batch)
                    model.flush()
                    server.publish(model)
            except Exception as error:  # pragma: no cover - failure reporting
                errors.append(f"writer: {error!r}")
            finally:
                done.set()

        def reader() -> None:
            try:
                while not done.is_set() or len(observed) < 50:
                    generation, result = server.estimate_batch_tagged(plan)
                    payload = result.tobytes()
                    with observed_lock:
                        observed.append((generation, payload))
                    if done.is_set() and len(observed) >= 50:
                        break
            except Exception as error:  # pragma: no cover - failure reporting
                errors.append(f"reader: {error!r}")

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(self.READERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        assert observed, "readers never produced a result"

        # No torn reads: every observed result is bitwise the serial-replay
        # answer of the generation that served it.
        for generation, payload in observed:
            assert generation in expected, f"unknown generation {generation}"
            assert payload == expected[generation], (
                f"generation {generation} served a result that matches no "
                f"published model state (torn read)"
            )

        # Final state equals the serial replay of the whole stream.
        assert server.generation == self.BATCHES + 1
        final = server.estimate_batch(plan)
        assert final.tobytes() == expected[self.BATCHES + 1]

        # The cache holds only current-generation entries.
        assert all(key[0] == server.generation for key in server._cache)

    def test_concurrent_cache_serves_only_current_generation(self, table, plan) -> None:
        """A cached answer is never served across a generation boundary."""
        server = EstimatorServer(StreamingADE(max_kernels=32).fit(table), cache_size=8)
        baseline = np.array(server.estimate_batch(plan))
        for step in range(4):
            model = server.checkout()
            model.insert(np.random.default_rng(step).normal(loc=5.0, size=(300, 2)))
            model.flush()
            server.publish(model)
            fresh_model = server.model.estimate_batch(plan)
            served = server.estimate_batch(plan)  # miss: new generation key
            served_again = server.estimate_batch(plan)  # hit: same generation
            np.testing.assert_array_equal(served, fresh_model)
            np.testing.assert_array_equal(served_again, fresh_model)
            assert not np.array_equal(served, baseline)


class TestServerStats:
    """The monitoring endpoint: one consistent, JSON-serialisable dict."""

    def test_counters_and_identity(self, server, plan) -> None:
        import json

        server.estimate_batch(plan)   # miss
        server.estimate_batch(plan)   # hit
        server.estimate_batch(plan)   # hit
        stats = server.stats()
        assert stats["cache_hits"] == 2
        assert stats["cache_misses"] == 1
        assert stats["hit_rate"] == pytest.approx(2 / 3)
        assert stats["cached_plans"] == 1
        assert stats["cache_capacity"] == 16
        assert stats["generation"] == 1
        assert stats["model"] == "streaming_ade"
        assert stats["columns"] == ["x0", "x1"]
        assert stats["generation_swaps"] == 0
        assert stats["cache_invalidations"] == 0
        json.dumps(stats)  # must be pure JSON for monitoring pipelines

    def test_generation_tracks_publishes(self, server, plan) -> None:
        server.estimate_batch(plan)
        fresh = server.checkout()
        server.publish(fresh)
        stats = server.stats()
        assert stats["generation"] == 2
        assert stats["cached_plans"] == 0  # publish invalidated the cache
        assert stats["generation_swaps"] == 1
        assert stats["cache_invalidations"] == 1  # the one cached plan was evicted

    def test_sharded_model_reports_shards(self, table, plan) -> None:
        from repro.shard.sharded import ShardedEstimator

        sharded = ShardedEstimator("equiwidth", shards=3).fit(table)
        server = EstimatorServer(sharded, cache_size=4)
        stats = server.stats()
        assert stats["shards"] == 3
        assert sum(stats["shard_rows"]) == table.row_count
        assert stats["rows_modelled"] == table.row_count

    def test_zero_traffic_hit_rate(self, server) -> None:
        assert server.stats()["hit_rate"] == 0.0


class TestServedEnsembleFeedback:
    """Satellite: weight updates through a served ensemble are real publishes.

    ``EstimatorServer.observe`` must route feedback through the copy-on-write
    protocol: the weight update happens on a private copy, the generation
    bumps, and every cached plan of the superseded version is invalidated —
    a reader can never be answered from a cache entry computed under stale
    expert weights.
    """

    ROUNDS = 10
    READERS = 3

    def test_observe_bumps_generation_and_invalidates_cache(self, table, plan) -> None:
        ensemble = EnsembleEstimator(seed=0).fit(table)
        server = EstimatorServer(ensemble, cache_size=16)
        server.estimate_batch(plan)  # one cached plan under generation 1
        weights_before = np.array(server.model.weights)
        truths = table.true_selectivities(plan)

        generation = server.observe(plan, truths)

        assert generation == 2 == server.generation
        stats = server.stats()
        assert stats["generation_swaps"] == 1
        assert stats["cache_invalidations"] == 1
        assert not np.array_equal(np.array(server.model.weights), weights_before)
        assert all(key[0] == server.generation for key in server._cache)
        # The served model answers under the *new* weights.
        np.testing.assert_array_equal(
            server.estimate_batch(plan), server.model.estimate_batch(plan)
        )

    def test_observe_feedback_estimator_fallback(self, table, plan) -> None:
        from repro.core.feedback import FeedbackAdaptiveEstimator

        model = FeedbackAdaptiveEstimator(
            base=KDESelectivityEstimator(sample_size=128)
        ).fit(table)
        server = EstimatorServer(model, cache_size=4)
        truths = table.true_selectivities(plan)
        assert server.observe(plan, truths) == 2
        assert server.model.feedback_count == len(plan)

    def test_observe_rejects_feedback_free_model(self, table, plan) -> None:
        server = EstimatorServer(KDESelectivityEstimator(sample_size=64).fit(table))
        with pytest.raises(InvalidParameterError):
            server.observe(plan, np.zeros(len(plan)))

    def test_feedback_hammer(self, table, plan) -> None:
        """Readers racing weight updates only ever see published weight states."""
        truths = table.true_selectivities(plan)

        # Serial replay: the correct answer of every feedback generation.
        replay = EnsembleEstimator(seed=0).fit(table)
        replay.flush()
        expected: dict[int, bytes] = {1: replay.estimate_batch(plan).tobytes()}
        for round_index in range(self.ROUNDS):
            replay.observe(plan, truths)
            replay.flush()
            expected[round_index + 2] = replay.estimate_batch(plan).tobytes()

        server = EstimatorServer(EnsembleEstimator(seed=0).fit(table), cache_size=16)
        errors: list[str] = []
        observed: list[tuple[int, bytes]] = []
        observed_lock = threading.Lock()
        done = threading.Event()

        def writer() -> None:
            try:
                for _ in range(self.ROUNDS):
                    server.observe(plan, truths)
            except Exception as error:  # pragma: no cover - failure reporting
                errors.append(f"writer: {error!r}")
            finally:
                done.set()

        def reader() -> None:
            try:
                while not done.is_set() or len(observed) < 50:
                    generation, result = server.estimate_batch_tagged(plan)
                    payload = result.tobytes()
                    with observed_lock:
                        observed.append((generation, payload))
                    if done.is_set() and len(observed) >= 50:
                        break
            except Exception as error:  # pragma: no cover - failure reporting
                errors.append(f"reader: {error!r}")

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(self.READERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        assert observed, "readers never produced a result"

        # Every result a reader saw is bitwise the serial-replay answer of
        # the weight state that served it — never a stale-weight cache entry.
        for generation, payload in observed:
            assert generation in expected, f"unknown generation {generation}"
            assert payload == expected[generation], (
                f"generation {generation} served a result computed under "
                f"different expert weights (stale cache entry)"
            )

        assert server.generation == self.ROUNDS + 1
        assert server.estimate_batch(plan).tobytes() == expected[self.ROUNDS + 1]
        stats = server.stats()
        assert stats["generation_swaps"] == self.ROUNDS
        assert stats["cache_invalidations"] >= 1
        assert all(key[0] == server.generation for key in server._cache)


class TestServerTelemetry:
    """PR-8 satellites: one hit-rate source, reset_stats, torn-pair freedom,
    and the instrumented request path's metrics registry contents."""

    def test_hit_rate_single_source(self, table, plan) -> None:
        from repro.obs.metrics import hit_rate

        server = EstimatorServer(StreamingADE(max_kernels=32).fit(table), cache_size=8)
        server.estimate_batch(plan)
        server.estimate_batch(plan)
        info = server.cache_info()
        assert info.hit_rate == hit_rate(info.hits, info.misses)
        assert server.stats()["hit_rate"] == info.hit_rate

    def test_reset_stats_clears_counters_not_generation(self, table, plan) -> None:
        server = EstimatorServer(StreamingADE(max_kernels=32).fit(table), cache_size=8)
        server.estimate_batch(plan)
        server.estimate_batch(plan)
        server.publish(server.checkout())
        server.reset_stats()
        stats = server.stats()
        assert stats["cache_hits"] == 0
        assert stats["cache_misses"] == 0
        assert stats["cache_invalidations"] == 0
        # the generation bookkeeping must survive a counter reset:
        assert stats["generation_swaps"] == 1
        assert stats["generation"] == 1 + stats["generation_swaps"]

    def test_instrumented_request_path_records(self, table, plan) -> None:
        from repro.obs.metrics import MetricsRegistry

        metrics = MetricsRegistry()
        server = EstimatorServer(
            StreamingADE(max_kernels=32).fit(table), cache_size=8, metrics=metrics
        )
        server.estimate_batch(plan)                      # unlabelled miss
        server.estimate_batch(plan, tenant="a")          # labelled hit
        server.estimate_batch(plan, tenant="a")          # labelled hit
        assert metrics.histogram("serve.request_seconds").count == 3
        assert metrics.histogram("serve.request_seconds", tenant="a").count == 2
        assert metrics.counter("serve.requests", tenant="a", outcome="hit").value == 2
        server.publish(server.checkout())
        assert metrics.histogram("serve.publish_seconds").count == 1
        gauges = metrics.snapshot()["gauges"]
        assert gauges["serve.generation"]["value"] == 2.0
        assert gauges["serve.generation_swaps"]["value"] == 1.0
        assert gauges["serve.hit_rate"]["value"] == pytest.approx(2 / 3)

    def test_uninstrumented_by_default(self, table, plan) -> None:
        server = EstimatorServer(StreamingADE(max_kernels=32).fit(table), cache_size=8)
        assert not server._instrumented
        # tenant labels are accepted and ignored without a registry
        server.estimate_batch(plan, tenant="a")

    def test_stats_never_torn_under_concurrent_publishes(self, table, plan) -> None:
        """generation == 1 + generation_swaps in *every* stats()/snapshot
        readout, even while whole-model publish() and per-shard
        publish_shard() race each other."""
        from repro.obs.metrics import MetricsRegistry
        from repro.shard.sharded import ShardedEstimator

        metrics = MetricsRegistry()
        sharded = ShardedEstimator("equiwidth", shards=2).fit(table)
        server = EstimatorServer(sharded, cache_size=8, metrics=metrics)
        stop = threading.Event()
        torn: list[str] = []

        def whole_model_writer() -> None:
            for _ in range(30):
                server.publish(server.checkout())

        def shard_writer(shard_id: int) -> None:
            for _ in range(30):
                server.publish_shard(shard_id, server.checkout_shard(shard_id))

        def sampler() -> None:
            while not stop.is_set():
                stats = server.stats()
                if stats["generation"] != 1 + stats["generation_swaps"]:
                    torn.append(
                        f"stats: gen={stats['generation']} "
                        f"swaps={stats['generation_swaps']}"
                    )
                gauges = metrics.snapshot()["gauges"]
                if (
                    gauges["serve.generation"]["value"]
                    < gauges["serve.generation_swaps"]["value"]
                ):
                    torn.append("snapshot: generation behind swap counter")

        threads = [
            threading.Thread(target=whole_model_writer),
            threading.Thread(target=shard_writer, args=(0,)),
            threading.Thread(target=shard_writer, args=(1,)),
        ]
        watcher = threading.Thread(target=sampler)
        watcher.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        stop.set()
        watcher.join(timeout=60)
        assert not torn, torn
        stats = server.stats()
        assert stats["generation"] == 1 + stats["generation_swaps"] == 91
