"""Shared fixtures for the test suite.

Setting ``REPRO_FAULT_RATE`` (with optional ``REPRO_FAULT_SEED``) arms a
low-rate random fault plan over the recoverable injection points for the
whole run — the CI fault-injection leg uses this to prove the retry layers
absorb background faults without changing any test outcome.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

_fault_rate = float(os.environ.get("REPRO_FAULT_RATE", "0") or 0.0)
if _fault_rate > 0.0:
    from repro.fault.plan import random_plan, set_default_fault_plan

    set_default_fault_plan(
        random_plan(
            _fault_rate, seed=int(os.environ.get("REPRO_FAULT_SEED", "0") or 0)
        )
    )

from repro import (
    RangeQuery,
    Table,
    UniformWorkload,
    correlated_table,
    gaussian_mixture_table,
    uniform_table,
    zipf_table,
)


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """Session-wide random generator with a fixed seed."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_table() -> Table:
    """A small 1-D uniform table used by cheap unit tests."""
    return uniform_table(rows=2000, dimensions=1, seed=1, name="small")


@pytest.fixture(scope="session")
def mixture_table_1d() -> Table:
    """1-D multimodal table (4-component Gaussian mixture)."""
    return gaussian_mixture_table(rows=5000, dimensions=1, components=4, separation=4.0, seed=2)


@pytest.fixture(scope="session")
def mixture_table_2d() -> Table:
    """2-D multimodal table."""
    return gaussian_mixture_table(rows=5000, dimensions=2, components=3, separation=4.0, seed=3)


@pytest.fixture(scope="session")
def skewed_table() -> Table:
    """1-D Zipf-skewed table."""
    return zipf_table(rows=5000, dimensions=1, theta=1.2, seed=4)


@pytest.fixture(scope="session")
def correlated_table_3d() -> Table:
    """3-D correlated Gaussian table."""
    return correlated_table(rows=4000, dimensions=3, correlation=0.8, seed=5)


@pytest.fixture(scope="session")
def workload_1d(mixture_table_1d: Table) -> list[RangeQuery]:
    """A reusable 1-D workload over the mixture table."""
    return UniformWorkload(mixture_table_1d, volume_fraction=0.1, seed=6).generate(50)


@pytest.fixture(scope="session")
def workload_2d(mixture_table_2d: Table) -> list[RangeQuery]:
    """A reusable 2-D workload over the 2-D mixture table."""
    return UniformWorkload(mixture_table_2d, volume_fraction=0.2, seed=7).generate(50)


def assert_valid_selectivity(value: float) -> None:
    """Every estimate must be a finite fraction in [0, 1]."""
    assert np.isfinite(value)
    assert 0.0 <= value <= 1.0
