"""Unit tests for the drift-adaptive expert ensemble.

The registry-wide suites (batch API, describe/config, snapshot round-trip,
fast-path equivalence) already exercise ``"ensemble"`` through
``available_estimators()``; this module pins the ensemble-specific behaviour
those generic suites cannot see — the AddExp lifecycle (decay, fixed-share,
spawn, prune), the policy registry, nested-wrapper config resolution and the
Catalog wiring.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.core.errors import InvalidParameterError, StreamError
from repro.core.estimator import (
    available_estimators,
    create_estimator,
    estimator_from_config,
)
from repro.core.resolve import resolve_estimator
from repro.engine.catalog import Catalog
from repro.ensemble import EnsembleEstimator
from repro.ensemble.experts import ExpertPool, WeightedExpert
from repro.ensemble.policy import (
    AddExpPolicy,
    PinnedPolicy,
    WeightPolicy,
    available_policies,
    create_policy,
)
from repro.workload.generators import UniformWorkload
from repro.workload.queries import RangeQuery

STREAM_EXPERTS = [
    {"name": "streaming_ade", "max_kernels": 64, "decay": 0.99, "seed": 1},
    {"name": "reservoir_sampling", "sample_size": 64, "decay": True, "seed": 2},
]


def _feedback_round(ensemble: EnsembleEstimator, truth: float = 0.5) -> None:
    query = RangeQuery({column: (-100.0, 100.0) for column in ensemble.columns})
    ensemble.observe([query], [truth])


class TestConstruction:
    def test_registered(self) -> None:
        assert "ensemble" in available_estimators()

    def test_default_pool(self) -> None:
        ensemble = EnsembleEstimator()
        names = [spec["name"] for spec in ensemble.config()["experts"]]
        assert names == ["kde", "equidepth", "streaming_ade", "reservoir_sampling"]

    def test_rejects_empty_pool(self) -> None:
        with pytest.raises(InvalidParameterError):
            EnsembleEstimator(experts=[])

    def test_rejects_nested_ensemble(self) -> None:
        with pytest.raises(InvalidParameterError):
            EnsembleEstimator(experts=[EnsembleEstimator()])

    def test_rejects_bad_lifecycle_parameters(self) -> None:
        with pytest.raises(InvalidParameterError):
            EnsembleEstimator(beta=1.0)
        with pytest.raises(InvalidParameterError):
            EnsembleEstimator(gamma=0.0)
        with pytest.raises(InvalidParameterError):
            EnsembleEstimator(max_experts=0)
        with pytest.raises(InvalidParameterError):
            EnsembleEstimator(prune="newest")
        with pytest.raises(InvalidParameterError):
            EnsembleEstimator(buffer_rows=-1)

    def test_start_requires_startable_experts(self) -> None:
        ensemble = EnsembleEstimator(experts=[{"name": "kde", "sample_size": 64}])
        with pytest.raises(StreamError):
            ensemble.start(["x0"])


class TestAddExpLifecycle:
    def test_weights_decay_toward_accurate_expert(self, mixture_table_1d) -> None:
        ensemble = EnsembleEstimator(
            experts=copy.deepcopy(STREAM_EXPERTS), beta=0.1, seed=0
        ).fit(mixture_table_1d)
        workload = UniformWorkload(mixture_table_1d, seed=5).generate(20)
        truths = mixture_table_1d.true_selectivities(workload)
        for _ in range(5):
            ensemble.observe(workload, truths)
        weights = ensemble.weights
        assert weights.shape == (2,)
        assert weights.sum() == pytest.approx(1.0)
        # The expert with the lower observed loss must carry the larger weight.
        losses = [e.loss_ewma for e in ensemble.experts]
        assert weights[int(np.argmin(losses))] == weights.max()

    def test_lifecycle_is_deterministic(self, mixture_table_1d) -> None:
        def run() -> np.ndarray:
            ensemble = EnsembleEstimator(
                experts=copy.deepcopy(STREAM_EXPERTS), seed=7
            ).fit(mixture_table_1d)
            workload = UniformWorkload(mixture_table_1d, seed=6).generate(15)
            truths = mixture_table_1d.true_selectivities(workload)
            for _ in range(4):
                ensemble.observe(workload, truths)
            return ensemble.weights

        np.testing.assert_array_equal(run(), run())

    def test_spawn_on_sustained_loss_and_prune_to_budget(self) -> None:
        ensemble = EnsembleEstimator(
            experts=copy.deepcopy(STREAM_EXPERTS),
            spawn_threshold=0.05,
            spawn_cooldown=1,
            max_experts=2,
            prune="weakest",
            seed=3,
        )
        ensemble.start(["x0"])
        ensemble.insert(np.random.default_rng(0).normal(0.0, 1.0, size=(500, 1)))
        ensemble.flush()
        # Feed deliberately wrong truths so the ensemble loss stays high.
        for _ in range(3):
            _feedback_round(ensemble, truth=0.0)
        assert len(ensemble.spawn_history) >= 1
        assert len(ensemble.experts) <= 2  # pruned back to budget every spawn
        assert ensemble.feedback_rounds == 3

    def test_spawned_expert_seeds_follow_pool_rng(self) -> None:
        pool = ExpertPool(
            AddExpPolicy(),
            beta=0.5,
            gamma=0.1,
            max_experts=4,
            spawn_threshold=0.35,
            spawn_cooldown=1,
            prune="weakest",
            seed=11,
        )
        specs = [{"name": "reservoir_sampling", "sample_size": 8, "seed": 1}]
        first = pool.next_spawn_spec(specs)["seed"]
        second = pool.next_spawn_spec(specs)["seed"]
        assert first != 1 and second != 1 and first != second

    def test_prune_oldest_evicts_earliest_born(self) -> None:
        pool = ExpertPool(
            AddExpPolicy(),
            beta=0.5,
            gamma=0.1,
            max_experts=2,
            spawn_threshold=0.35,
            spawn_cooldown=1,
            prune="oldest",
            seed=0,
        )
        old = create_estimator("reservoir_sampling", sample_size=8)
        young = create_estimator("reservoir_sampling", sample_size=8)
        pool.experts = [WeightedExpert(old, born=0), WeightedExpert(young, born=5)]
        pool.admit(create_estimator("reservoir_sampling", sample_size=8), {"name": "r"})
        assert [e.born for e in pool.experts[:-1]] == [5]

    def test_expert_summary_is_json_like(self, mixture_table_1d) -> None:
        ensemble = EnsembleEstimator(experts=copy.deepcopy(STREAM_EXPERTS)).fit(
            mixture_table_1d
        )
        summary = ensemble.expert_summary()
        assert len(summary) == 2
        assert {"expert", "weight", "born", "rounds", "loss_ewma"} <= set(summary[0])


class TestPolicies:
    def test_registry_names(self) -> None:
        assert available_policies() == ["addexp", "pinned", "windowed"]

    def test_create_policy_accepts_name_mapping_and_instance(self) -> None:
        assert isinstance(create_policy("pinned"), PinnedPolicy)
        mapped = create_policy({"name": "addexp", "share": 0.1})
        assert isinstance(mapped, AddExpPolicy) and mapped.share == 0.1
        instance = AddExpPolicy(share=0.2)
        assert create_policy(instance) is instance

    def test_create_policy_rejects_unknown_and_nameless(self) -> None:
        with pytest.raises(InvalidParameterError):
            create_policy("bogus")
        with pytest.raises(InvalidParameterError):
            create_policy({"share": 0.1})

    def test_share_validation(self) -> None:
        with pytest.raises(InvalidParameterError):
            AddExpPolicy(share=1.0)
        with pytest.raises(InvalidParameterError):
            AddExpPolicy(share=-0.1)

    def test_fixed_share_keeps_losing_expert_warm(self) -> None:
        experts = [
            WeightedExpert(create_estimator("reservoir_sampling", sample_size=8))
            for _ in range(2)
        ]
        for expert in experts:
            expert.weight = 0.5
        losses = np.array([0.0, 1.0])
        plain = AddExpPolicy(share=0.0).update(experts, losses, beta=0.01)
        shared = AddExpPolicy(share=0.1).update(experts, losses, beta=0.01)
        assert shared[1] > plain[1]  # the loser keeps a recoverable weight
        assert shared[1] >= 0.1 * shared.sum() / 2

    def test_addexp_share_config_roundtrips_through_ensemble(
        self, mixture_table_1d
    ) -> None:
        ensemble = EnsembleEstimator(
            experts=copy.deepcopy(STREAM_EXPERTS), policy=AddExpPolicy(share=0.05)
        ).fit(mixture_table_1d)
        config = ensemble.config()
        assert config["policy"] == {"name": "addexp", "share": 0.05}
        rebuilt = estimator_from_config(config)
        assert isinstance(rebuilt._policy, AddExpPolicy)
        assert rebuilt._policy.share == 0.05

    def test_pinned_policy_never_moves_weights(self, mixture_table_1d) -> None:
        ensemble = EnsembleEstimator(
            experts=copy.deepcopy(STREAM_EXPERTS), policy="pinned"
        ).fit(mixture_table_1d)
        workload = UniformWorkload(mixture_table_1d, seed=9).generate(10)
        truths = mixture_table_1d.true_selectivities(workload)
        before = ensemble.weights.copy()
        for _ in range(3):
            ensemble.observe(workload, truths)
        np.testing.assert_array_equal(ensemble.weights, before)

    def test_custom_policy_instance_is_used(self, mixture_table_1d) -> None:
        class Halver(WeightPolicy):
            name = "halver"

            def update(self, experts, losses, beta):
                return np.array([e.weight for e in experts]) * [1.0, 0.5]

        ensemble = EnsembleEstimator(
            experts=copy.deepcopy(STREAM_EXPERTS), policy=Halver()
        ).fit(mixture_table_1d)
        _feedback_round(ensemble)
        assert ensemble.weights[0] == pytest.approx(2.0 / 3.0)


class TestResolveRegression:
    """Nested wrapper configs resolve uniformly through ``resolve_estimator``."""

    def test_resolve_accepts_all_spec_forms(self) -> None:
        instance = create_estimator("kde", sample_size=64)
        assert resolve_estimator(instance) is instance
        assert resolve_estimator("kde").name == "kde"
        assert resolve_estimator({"name": "kde", "sample_size": 32}).name == "kde"
        with pytest.raises(InvalidParameterError):
            resolve_estimator(None)
        with pytest.raises(InvalidParameterError):
            resolve_estimator(42)  # type: ignore[arg-type]

    def test_ensemble_of_feedback_of_kde_config_roundtrips(
        self, mixture_table_1d
    ) -> None:
        ensemble = EnsembleEstimator(
            experts=[
                {
                    "name": "feedback_ade",
                    "base": {"name": "kde", "sample_size": 64},
                    "max_regions": 16,
                },
                {"name": "reservoir_sampling", "sample_size": 64, "seed": 2},
            ]
        ).fit(mixture_table_1d)
        config = ensemble.config()
        inner = config["experts"][0]
        assert inner["name"] == "feedback_ade"
        assert inner["base"]["name"] == "kde"
        rebuilt = estimator_from_config(config).fit(mixture_table_1d)
        assert [s["name"] for s in rebuilt.config()["experts"]] == [
            "feedback_ade",
            "reservoir_sampling",
        ]


class TestSnapshotLifecycle:
    def test_snapshot_preserves_weights_and_rng_state(self, mixture_table_1d) -> None:
        ensemble = EnsembleEstimator(
            experts=copy.deepcopy(STREAM_EXPERTS),
            spawn_threshold=0.05,
            spawn_cooldown=1,
            seed=13,
        ).fit(mixture_table_1d)
        for _ in range(3):
            _feedback_round(ensemble, truth=0.0)
        restored = EnsembleEstimator(experts=copy.deepcopy(STREAM_EXPERTS))
        restored.load_state(ensemble.state_dict())
        np.testing.assert_array_equal(restored.weights, ensemble.weights)
        assert restored.spawn_history == ensemble.spawn_history
        assert restored.feedback_rounds == ensemble.feedback_rounds
        # The lifecycle RNG continues identically: the next spawned seed of the
        # live pool equals the next spawned seed of the restored pool.
        spec = [{"name": "reservoir_sampling", "sample_size": 8, "seed": 1}]
        assert (
            ensemble._pool.next_spawn_spec(spec)["seed"]
            == restored._pool.next_spawn_spec(spec)["seed"]
        )


class TestCatalogWiring:
    def test_attach_refresh_estimate(self, mixture_table_2d) -> None:
        catalog = Catalog()
        catalog.add_table(mixture_table_2d)
        ensemble = EnsembleEstimator(
            experts=[
                {"name": "kde", "sample_size": 128, "seed": 1},
                {"name": "reservoir_sampling", "sample_size": 128, "seed": 2},
            ]
        )
        catalog.attach_estimator(mixture_table_2d.name, ensemble)
        query = RangeQuery(
            {
                column: (
                    float(mixture_table_2d.column(column).min()),
                    float(mixture_table_2d.column(column).max()),
                )
                for column in ensemble.columns
            }
        )
        estimate = catalog.estimate_selectivity(mixture_table_2d.name, query)
        assert 0.0 <= estimate <= 1.0
        catalog.refresh(mixture_table_2d.name)  # refit in place must not raise

    def test_catalog_save_restore_roundtrip(self, mixture_table_2d, tmp_path) -> None:
        from repro.persist.store import ModelStore

        catalog = Catalog()
        catalog.add_table(mixture_table_2d)
        catalog.attach_estimator(
            mixture_table_2d.name,
            EnsembleEstimator(
                experts=[{"name": "kde", "sample_size": 128, "seed": 1}]
            ),
        )
        store = ModelStore(tmp_path / "models")
        catalog.save(store)
        fresh = Catalog()
        fresh.add_table(mixture_table_2d)
        fresh.restore(store)
        workload = UniformWorkload(mixture_table_2d, seed=4).generate(10)
        for query in workload:
            assert fresh.estimate_selectivity(
                mixture_table_2d.name, query
            ) == pytest.approx(
                catalog.estimate_selectivity(mixture_table_2d.name, query), abs=0.0
            )
