"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.baselines.histogram import EquiDepthHistogram, EquiWidthHistogram, Histogram1D
from repro.baselines.wavelet import haar_transform, inverse_haar_transform, top_k_coefficients
from repro.core.bandwidth import local_bandwidth_factors, scott_bandwidth
from repro.core.kde import KDESelectivityEstimator
from repro.core.kernels import KERNELS, get_kernel
from repro.core.streaming import StreamingADE
from repro.engine.table import Table
from repro.metrics.errors import q_errors, relative_errors
from repro.stream.reservoir import ReservoirSampler
from repro.stream.windows import SlidingWindow
from repro.workload.queries import Interval, RangeQuery

# Shared strategies -----------------------------------------------------------

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)

bounded_arrays = npst.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=2, max_value=200),
    elements=st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
)


class TestKernelProperties:
    @given(
        kernel_name=st.sampled_from(sorted(KERNELS)),
        u=npst.arrays(
            dtype=np.float64,
            shape=st.integers(1, 50),
            elements=st.floats(min_value=-10, max_value=10, allow_nan=False),
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_pdf_nonnegative_cdf_bounded(self, kernel_name: str, u: np.ndarray) -> None:
        kernel = get_kernel(kernel_name)
        assert np.all(kernel.pdf(u) >= 0)
        cdf = kernel.cdf(u)
        assert np.all((cdf >= -1e-12) & (cdf <= 1 + 1e-12))

    @given(
        kernel_name=st.sampled_from(sorted(KERNELS)),
        a=st.floats(min_value=-5, max_value=5, allow_nan=False),
        width=st.floats(min_value=0, max_value=10, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_interval_mass_monotone_in_width(self, kernel_name: str, a: float, width: float) -> None:
        kernel = get_kernel(kernel_name)
        narrow = kernel.interval_mass(np.array([a]), np.array([a + width / 2]))[0]
        wide = kernel.interval_mass(np.array([a]), np.array([a + width]))[0]
        assert wide >= narrow - 1e-12


class TestIntervalAndQueryProperties:
    @given(low=finite_floats, width=st.floats(min_value=0, max_value=1e6, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_interval_width_and_containment(self, low: float, width: float) -> None:
        interval = Interval(low, low + width)
        assert interval.width == pytest.approx(width, rel=1e-9, abs=1e-9)
        assert interval.contains(low)
        assert interval.contains(low + width)
        midpoint = low + width / 2
        assert interval.contains(midpoint)

    @given(
        low_a=finite_floats,
        width_a=st.floats(min_value=0, max_value=1000, allow_nan=False),
        low_b=finite_floats,
        width_b=st.floats(min_value=0, max_value=1000, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_interval_intersection_is_commutative_and_contained(
        self, low_a: float, width_a: float, low_b: float, width_b: float
    ) -> None:
        a = Interval(low_a, low_a + width_a)
        b = Interval(low_b, low_b + width_b)
        ab = a.intersect(b)
        ba = b.intersect(a)
        assert ab == ba
        if ab is not None:
            assert ab.width <= min(a.width, b.width) + 1e-9

    @given(
        bounds=st.dictionaries(
            st.sampled_from(["a", "b", "c"]),
            st.tuples(
                st.floats(min_value=-100, max_value=100, allow_nan=False),
                st.floats(min_value=0, max_value=100, allow_nan=False),
            ),
            min_size=1,
            max_size=3,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_range_query_equality_and_hash(self, bounds) -> None:
        constraints = {k: (low, low + width) for k, (low, width) in bounds.items()}
        q1 = RangeQuery(constraints)
        q2 = RangeQuery(dict(reversed(list(constraints.items()))))
        assert q1 == q2
        assert hash(q1) == hash(q2)
        assert q1.dimensionality == len(constraints)


class TestTableProperties:
    @given(data=npst.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 100), st.integers(1, 3)),
        elements=st.floats(min_value=-1000, max_value=1000, allow_nan=False),
    ))
    @settings(max_examples=60, deadline=None)
    def test_true_selectivity_bounds_and_full_domain(self, data: np.ndarray) -> None:
        table = Table.from_array("t", data)
        domain = table.domain()
        full = RangeQuery({name: bounds for name, bounds in domain.items()})
        assert table.true_selectivity(full) == pytest.approx(1.0)
        narrow = RangeQuery({table.column_names[0]: (domain[table.column_names[0]][0],
                                                     domain[table.column_names[0]][0])})
        assert 0.0 < table.true_selectivity(narrow) <= 1.0

    @given(values=bounded_arrays, fraction=st.floats(min_value=0.01, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_selectivity_monotone_in_range(self, values: np.ndarray, fraction: float) -> None:
        table = Table("t", {"x": values})
        low, high = float(values.min()), float(values.max())
        mid = low + (high - low) * fraction
        small = table.true_selectivity(RangeQuery({"x": (low, mid)}))
        large = table.true_selectivity(RangeQuery({"x": (low, high)}))
        assert small <= large + 1e-12


class TestHistogramProperties:
    @given(values=bounded_arrays, buckets=st.integers(2, 64))
    @settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_histogram_estimates_are_fractions(self, values: np.ndarray, buckets: int) -> None:
        assume(float(values.max()) > float(values.min()))  # constant columns are degenerate
        table = Table("t", {"x": values})
        for estimator_type in (EquiWidthHistogram, EquiDepthHistogram):
            estimator = estimator_type(buckets=buckets).fit(table)
            low, high = table.domain()["x"]
            estimate = estimator.estimate(RangeQuery({"x": (low, high)}))
            assert 0.0 <= estimate <= 1.0
            assert estimate == pytest.approx(1.0, abs=0.02)

    @given(
        edges_start=st.floats(min_value=-100, max_value=100, allow_nan=False),
        widths=npst.arrays(
            dtype=np.float64,
            shape=st.integers(1, 30),
            elements=st.floats(min_value=0.01, max_value=10, allow_nan=False),
        ),
        counts_seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_histogram1d_selectivity_additive(
        self, edges_start: float, widths: np.ndarray, counts_seed: int
    ) -> None:
        edges = edges_start + np.concatenate([[0.0], np.cumsum(widths)])
        counts = np.random.default_rng(counts_seed).integers(0, 100, size=widths.size).astype(float)
        histogram = Histogram1D(edges, counts)
        low, high = float(edges[0]), float(edges[-1])
        mid = (low + high) / 2
        left = histogram.selectivity(low, mid)
        right = histogram.selectivity(mid, high)
        total = histogram.selectivity(low, high)
        if counts.sum() > 0:
            assert left + right == pytest.approx(total, abs=1e-6)
            assert total == pytest.approx(1.0, abs=1e-9)


class TestWaveletProperties:
    @given(
        values=npst.arrays(
            dtype=np.float64,
            shape=st.sampled_from([2, 4, 8, 16, 32, 64]),
            elements=st.floats(min_value=-1000, max_value=1000, allow_nan=False),
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_haar_round_trip_and_energy(self, values: np.ndarray) -> None:
        transformed = haar_transform(values)
        np.testing.assert_allclose(inverse_haar_transform(transformed), values, atol=1e-6)
        assert np.sum(values**2) == pytest.approx(np.sum(transformed**2), rel=1e-6, abs=1e-6)

    @given(
        values=npst.arrays(
            dtype=np.float64,
            shape=st.sampled_from([8, 16, 32]),
            elements=st.floats(min_value=-100, max_value=100, allow_nan=False),
        ),
        k=st.integers(0, 32),
    )
    @settings(max_examples=80, deadline=None)
    def test_top_k_keeps_at_most_k_nonzero(self, values: np.ndarray, k: int) -> None:
        kept = top_k_coefficients(values, k)
        assert np.count_nonzero(kept) <= k
        assert np.all(np.isin(kept[kept != 0], values))


class TestEstimatorInvariants:
    @given(
        values=npst.arrays(
            dtype=np.float64,
            shape=st.integers(20, 300),
            elements=st.floats(min_value=-50, max_value=50, allow_nan=False),
        ),
        low=st.floats(min_value=-60, max_value=60, allow_nan=False),
        width=st.floats(min_value=0, max_value=120, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_kde_estimates_always_valid(self, values: np.ndarray, low: float, width: float) -> None:
        table = Table("t", {"x": values})
        estimator = KDESelectivityEstimator(sample_size=64, seed=0).fit(table)
        estimate = estimator.estimate(RangeQuery({"x": (low, low + width)}))
        assert 0.0 <= estimate <= 1.0
        assert np.isfinite(estimate)

    @given(
        values=npst.arrays(
            dtype=np.float64,
            shape=st.integers(10, 400),
            elements=st.floats(min_value=-50, max_value=50, allow_nan=False),
        ),
        max_kernels=st.integers(2, 32),
    )
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_streaming_ade_budget_and_weight_conservation(
        self, values: np.ndarray, max_kernels: int
    ) -> None:
        estimator = StreamingADE(max_kernels=max_kernels).start(["x"])
        estimator.insert(values.reshape(-1, 1))
        assert estimator.kernel_count <= max_kernels
        assert estimator.effective_count == pytest.approx(values.size, rel=1e-9)
        low, high = float(values.min()), float(values.max())
        estimate = estimator.estimate(RangeQuery({"x": (low - 1, high + 1)}))
        assert 0.0 <= estimate <= 1.0

    @given(values=bounded_arrays)
    @settings(max_examples=60, deadline=None)
    def test_scott_bandwidth_positive_and_shift_invariant(self, values: np.ndarray) -> None:
        h = scott_bandwidth(values)
        assert h > 0
        assert np.isfinite(h)
        assume(float(np.std(values)) > 1e-6)  # constant columns fall back to a tiny floor
        shifted = scott_bandwidth(values + 37.0)
        assert shifted == pytest.approx(h, rel=1e-4)

    @given(
        density=npst.arrays(
            dtype=np.float64,
            shape=st.integers(1, 200),
            elements=st.floats(min_value=1e-6, max_value=1e3, allow_nan=False),
        ),
        sensitivity=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_local_factors_bounded(self, density: np.ndarray, sensitivity: float) -> None:
        factors = local_bandwidth_factors(density, sensitivity, max_factor=4.0)
        assert np.all(factors <= 4.0 + 1e-9)
        assert np.all(factors >= 0.25 - 1e-9)


class TestStreamSubstrateProperties:
    @given(
        capacity=st.integers(1, 50),
        stream_length=st.integers(0, 300),
    )
    @settings(max_examples=60, deadline=None)
    def test_reservoir_never_exceeds_capacity(self, capacity: int, stream_length: int) -> None:
        sampler = ReservoirSampler(capacity, 1, seed=0)
        if stream_length:
            sampler.insert(np.arange(stream_length, dtype=float).reshape(-1, 1))
        assert sampler.size == min(capacity, stream_length)
        assert sampler.seen == stream_length

    @given(
        capacity=st.integers(1, 50),
        stream_length=st.integers(0, 300),
    )
    @settings(max_examples=60, deadline=None)
    def test_window_holds_exactly_last_rows(self, capacity: int, stream_length: int) -> None:
        window = SlidingWindow(capacity, 1)
        data = np.arange(stream_length, dtype=float).reshape(-1, 1)
        if stream_length:
            window.insert(data)
        expected = data[-capacity:] if stream_length else np.empty((0, 1))
        np.testing.assert_array_equal(window.contents(), expected)


class TestMetricProperties:
    @given(
        estimates=npst.arrays(
            dtype=np.float64,
            shape=st.integers(1, 100),
            elements=st.floats(min_value=0, max_value=1, allow_nan=False),
        ),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_q_error_at_least_one_and_symmetric(self, estimates: np.ndarray, seed: int) -> None:
        truths = np.random.default_rng(seed).uniform(0, 1, size=estimates.size)
        forward = q_errors(estimates, truths)
        backward = q_errors(truths, estimates)
        assert np.all(forward >= 1.0 - 1e-12)
        np.testing.assert_allclose(forward, backward, rtol=1e-9)

    @given(
        estimates=npst.arrays(
            dtype=np.float64,
            shape=st.integers(1, 100),
            elements=st.floats(min_value=0, max_value=1, allow_nan=False),
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_relative_error_zero_iff_exact(self, estimates: np.ndarray) -> None:
        errors = relative_errors(estimates, estimates)
        np.testing.assert_allclose(errors, 0.0, atol=1e-12)
