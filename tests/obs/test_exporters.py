"""Exporter registry resolution + lossless round-trips (JSON and JSONL)."""

from __future__ import annotations

import pytest

from repro.core.errors import InvalidParameterError
from repro.obs.export import (
    JSONExporter,
    JSONLExporter,
    available_exporters,
    create_exporter,
    exporter_for_path,
    exporter_from_config,
    resolve_exporter,
)
from repro.obs.metrics import MetricsRegistry


def sample_payload() -> dict:
    """A realistic simulator-run payload: report keys + registry snapshot."""
    registry = MetricsRegistry()
    registry.counter("traffic.ops", tenant="a", op="query").inc(7)
    registry.gauge("serve.generation").set(3)
    for v in (1e-4, 2e-4, 5e-3):
        registry.histogram("traffic.op_seconds", tenant="a", op="query").record(v)
    registry.histogram("serve.request_seconds").record(3e-5)
    payload = {"duration": 2.0, "seed": 42, "checksum": 10.5, "tenants": {"a": {"p99": 0.005}}}
    payload.update(registry.snapshot())
    return payload


class TestResolution:
    def test_both_formats_registered(self) -> None:
        assert {"json", "jsonl"} <= set(available_exporters())

    def test_resolve_by_name(self) -> None:
        assert isinstance(resolve_exporter("jsonl"), JSONLExporter)

    def test_resolve_instance_passthrough(self) -> None:
        exporter = JSONExporter(indent=0)
        assert resolve_exporter(exporter) is exporter

    def test_resolve_config_mapping(self) -> None:
        exporter = resolve_exporter({"name": "json", "indent": 4})
        assert isinstance(exporter, JSONExporter)
        assert exporter.indent == 4

    def test_config_round_trip(self) -> None:
        exporter = JSONExporter(indent=4)
        clone = resolve_exporter(exporter.config())
        assert isinstance(clone, JSONExporter) and clone.indent == 4

    def test_unknown_name_rejected(self) -> None:
        with pytest.raises(InvalidParameterError, match="unknown exporter"):
            create_exporter("yaml")

    def test_config_requires_name(self) -> None:
        with pytest.raises(InvalidParameterError, match="name"):
            exporter_from_config({"indent": 2})

    def test_bad_spec_type_rejected(self) -> None:
        with pytest.raises(InvalidParameterError):
            resolve_exporter(3.14)

    def test_exporter_for_path_by_suffix(self, tmp_path) -> None:
        assert isinstance(exporter_for_path(tmp_path / "m.jsonl"), JSONLExporter)
        assert isinstance(exporter_for_path(tmp_path / "m.json"), JSONExporter)

    def test_exporter_for_path_unknown_suffix_lists_formats(self, tmp_path) -> None:
        with pytest.raises(InvalidParameterError) as err:
            exporter_for_path(tmp_path / "m.txt")
        message = str(err.value)
        assert "'.txt'" in message
        assert "json (.json)" in message and "csv (.csv)" in message


class TestRoundTrip:
    @pytest.mark.parametrize("name", ["json", "jsonl"])
    def test_lossless_round_trip(self, name, tmp_path) -> None:
        exporter = create_exporter(name)
        payload = sample_payload()
        path = exporter.export(payload, tmp_path / f"metrics{exporter.suffix}")
        assert exporter.load(path) == payload

    @pytest.mark.parametrize("name", ["json", "jsonl"])
    def test_dumps_loads_inverse(self, name) -> None:
        exporter = create_exporter(name)
        payload = sample_payload()
        assert exporter.loads(exporter.dumps(payload)) == payload

    def test_jsonl_one_record_per_metric(self) -> None:
        payload = sample_payload()
        lines = JSONLExporter().dumps(payload).strip().splitlines()
        metric_count = sum(
            len(payload[s]) for s in ("counters", "gauges", "histograms")
        )
        assert len(lines) == 1 + metric_count  # meta + one line per metric

    def test_jsonl_rejects_headless_file(self) -> None:
        with pytest.raises(InvalidParameterError):
            JSONLExporter().loads('{"record": "counters", "key": "x", "data": {}}\n')

    def test_jsonl_rejects_empty(self) -> None:
        with pytest.raises(InvalidParameterError):
            JSONLExporter().loads("")

    def test_export_creates_parent_dirs(self, tmp_path) -> None:
        path = JSONExporter().export({"a": 1}, tmp_path / "deep" / "dir" / "m.json")
        assert path.is_file()
