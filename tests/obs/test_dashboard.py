"""Dashboard rendering: self-contained offline HTML from collected series."""

from __future__ import annotations

import pytest

from repro.core.errors import InvalidParameterError
from repro.obs.collector import TelemetryCollector
from repro.obs.dashboard import load_series, render_dashboard, write_dashboard
from repro.obs.metrics import MetricsRegistry


@pytest.fixture()
def collector() -> TelemetryCollector:
    registry = MetricsRegistry()
    collector = TelemetryCollector(registry)
    collector.tick(now=0.0)
    for step in range(1, 5):
        registry.counter("traffic.ops", tenant="a").inc(10 * step)
        registry.histogram("serve.request_seconds", tenant="a").record(1e-3 * step)
        registry.gauge("serve.generation").set(step)
        collector.tick(now=float(step))
    return collector


class TestRender:
    def test_renders_every_series_as_a_panel(self, collector) -> None:
        html = render_dashboard(collector, title="test board")
        assert html.lstrip().lower().startswith("<!doctype html>")
        assert "test board" in html
        for key in collector.store.keys():
            assert key in html
        assert "<svg" in html  # sparklines are inline SVG

    def test_self_contained_offline(self, collector) -> None:
        # Zero third-party deps: no external scripts, stylesheets or fonts.
        html = render_dashboard(collector)
        assert "http://" not in html and "https://" not in html
        assert "<script src" not in html and "<link" not in html

    def test_slo_table_flags_breaches(self, collector) -> None:
        html = render_dashboard(collector, slo={"a": 1e-6, "ghost": 1.0})
        assert "breach" in html  # tenant a is far over a 1µs target
        assert "no data" in html  # ghost has no series

    def test_renders_from_exported_file(self, collector, tmp_path) -> None:
        from repro.obs.export import exporter_for_path

        path = tmp_path / "series.csv"
        exporter_for_path(path).export(collector.series_payload(), path)
        store = load_series(path)
        html = render_dashboard(store)
        assert render_dashboard(path) == html

    def test_write_dashboard(self, collector, tmp_path) -> None:
        path = write_dashboard(collector, tmp_path / "board.html")
        assert path.read_text().lstrip().lower().startswith("<!doctype html>")

    def test_bad_source_rejected(self) -> None:
        with pytest.raises(InvalidParameterError):
            render_dashboard(3.14)
