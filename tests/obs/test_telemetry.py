"""Unit and property tests for the telemetry primitives."""

from __future__ import annotations

import copy
import pickle
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import InvalidParameterError
from repro.obs.metrics import (
    NULL_REGISTRY,
    LatencyHistogram,
    MetricsRegistry,
    default_metrics,
    hit_rate,
    metric_key,
    set_default_metrics,
    use_default_metrics,
)


class TestHitRate:
    def test_zero_traffic_is_zero(self) -> None:
        assert hit_rate(0, 0) == 0.0

    def test_fraction(self) -> None:
        assert hit_rate(3, 1) == 0.75


class TestMetricKey:
    def test_bare_name(self) -> None:
        assert metric_key("serve.requests", ()) == "serve.requests"

    def test_labels_render_sorted(self) -> None:
        key = metric_key("serve.requests", (("op", "query"), ("tenant", "a")))
        assert key == "serve.requests{op=query,tenant=a}"


class TestCountersAndGauges:
    def test_counter_accumulates(self) -> None:
        registry = MetricsRegistry()
        registry.counter("rows").inc(5)
        registry.counter("rows").inc()
        assert registry.counter("rows").value == 6

    def test_counter_rejects_negative(self) -> None:
        with pytest.raises(InvalidParameterError):
            MetricsRegistry().counter("rows").inc(-1)

    def test_labels_distinguish_series(self) -> None:
        registry = MetricsRegistry()
        registry.counter("ops", tenant="a").inc()
        registry.counter("ops", tenant="b").inc(2)
        assert registry.counter("ops", tenant="a").value == 1
        assert registry.counter("ops", tenant="b").value == 2

    def test_get_or_create_returns_same_object(self) -> None:
        registry = MetricsRegistry()
        assert registry.counter("x", a="1") is registry.counter("x", a="1")
        assert registry.histogram("h") is registry.histogram("h")

    def test_gauge_set_and_move(self) -> None:
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(10)
        gauge.dec(3)
        assert gauge.value == 7

    def test_gauge_fn_evaluated_at_snapshot(self) -> None:
        registry = MetricsRegistry()
        box = {"v": 1}
        registry.gauge_fn("live", lambda: box["v"])
        box["v"] = 42
        assert registry.snapshot()["gauges"]["live"]["value"] == 42.0

    def test_snapshot_shape(self) -> None:
        registry = MetricsRegistry()
        registry.counter("c", tenant="a").inc()
        registry.histogram("h").record(1e-4)
        snap = registry.snapshot()
        assert snap["counters"]["c{tenant=a}"]["value"] == 1
        assert snap["histograms"]["h"]["count"] == 1
        assert set(snap) == {"counters", "gauges", "histograms"}

    def test_reset_drops_recorded_series(self) -> None:
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(2.0)
        registry.histogram("h").record(1e-3)
        registry.reset()
        assert registry.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_reset_preserves_callback_gauges(self) -> None:
        # Callback gauges are live views onto their owner's state (cache
        # counters, current generation): reset() clears recorded series but
        # must not silently un-instrument a still-running owner.
        registry = MetricsRegistry()
        box = {"v": 7}
        registry.gauge_fn("live", lambda: box["v"])
        registry.counter("c").inc()
        registry.reset()
        assert registry.snapshot()["counters"] == {}
        assert registry.snapshot()["gauges"]["live"]["value"] == 7.0


class TestTimer:
    def test_timer_records_one_span(self) -> None:
        registry = MetricsRegistry()
        with registry.timer("op_seconds"):
            pass
        assert registry.histogram("op_seconds").count == 1

    def test_timed_decorator(self) -> None:
        registry = MetricsRegistry()

        @registry.timed("fn_seconds")
        def work() -> int:
            return 7

        assert work() == 7
        assert registry.histogram("fn_seconds").count == 1


class TestRegistryIsASink:
    def test_deepcopy_returns_same_registry(self) -> None:
        registry = MetricsRegistry()
        holder = {"metrics": registry}
        assert copy.deepcopy(holder)["metrics"] is registry

    def test_pickle_degrades_to_null(self) -> None:
        restored = pickle.loads(pickle.dumps(MetricsRegistry()))
        assert restored is NULL_REGISTRY


class TestNullRegistry:
    def test_disabled_and_inert(self) -> None:
        assert not NULL_REGISTRY.enabled
        NULL_REGISTRY.counter("x", tenant="t").inc()
        NULL_REGISTRY.gauge("g").set(3)
        NULL_REGISTRY.histogram("h").record(0.5)
        with NULL_REGISTRY.timer("t"):
            pass
        assert NULL_REGISTRY.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_null_quantiles_empty(self) -> None:
        assert NULL_REGISTRY.histogram("h").quantile(0.99) == 0.0


class TestDefaultRegistry:
    def test_default_is_null_until_set(self) -> None:
        assert default_metrics() is NULL_REGISTRY

    def test_set_and_clear(self) -> None:
        registry = MetricsRegistry()
        set_default_metrics(registry)
        try:
            assert default_metrics() is registry
        finally:
            set_default_metrics(None)
        assert default_metrics() is NULL_REGISTRY

    def test_scoped_use(self) -> None:
        registry = MetricsRegistry()
        with use_default_metrics(registry):
            assert default_metrics() is registry
        assert default_metrics() is NULL_REGISTRY


class TestLatencyHistogram:
    def test_empty_quantile_is_zero(self) -> None:
        assert LatencyHistogram("h").quantile(0.5) == 0.0

    def test_quantile_range_validated(self) -> None:
        with pytest.raises(InvalidParameterError):
            LatencyHistogram("h").quantile(1.5)

    def test_single_value_all_quantiles(self) -> None:
        h = LatencyHistogram("h")
        h.record(3.3e-4)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert h.quantile(q) == pytest.approx(3.3e-4, rel=LatencyHistogram.GROWTH - 1)

    def test_mean_and_count(self) -> None:
        h = LatencyHistogram("h")
        for v in (1e-3, 3e-3):
            h.record(v)
        assert h.count == 2
        assert h.mean == pytest.approx(2e-3)

    def test_out_of_range_clamped_to_observed_extremes(self) -> None:
        h = LatencyHistogram("h")
        h.record(1e-9)  # below LOW -> underflow bucket
        h.record(1e3)  # above HIGH -> overflow bucket
        assert h.quantile(0.0) == pytest.approx(1e-9)
        assert h.quantile(1.0) == pytest.approx(1e3)

    def test_snapshot_buckets_sparse(self) -> None:
        h = LatencyHistogram("h")
        h.record(1e-4)
        snap = h.snapshot()
        assert snap["count"] == 1
        assert sum(snap["buckets"].values()) == 1
        assert snap["p99"] == pytest.approx(h.quantile(0.99))

    def test_concurrent_records_all_land(self) -> None:
        h = LatencyHistogram("h")

        def pound() -> None:
            for _ in range(2000):
                h.record(1e-4)

        threads = [threading.Thread(target=pound) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # record is lock-free by design: a preemption can drop an observation,
        # but the histogram must stay internally sane and near-complete.
        assert 0 < h.count <= 8000
        assert h.quantile(0.5) == pytest.approx(1e-4, rel=LatencyHistogram.GROWTH - 1)

    @settings(max_examples=200, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=1e-7, max_value=1e2, allow_nan=False),
            min_size=1,
            max_size=200,
        ),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_quantile_within_one_bucket_of_numpy(self, values, q) -> None:
        """The paper-grade accuracy contract: histogram quantiles agree with
        ``np.quantile(..., method="inverted_cdf")`` to within one geometric
        bucket (a factor of GROWTH), clamped to the observed extremes."""
        h = LatencyHistogram("h")
        for v in values:
            h.record(v)
        truth = float(np.quantile(np.array(values), q, method="inverted_cdf"))
        readout = h.quantile(q)
        growth = LatencyHistogram.GROWTH
        assert readout / growth <= truth <= readout * growth * (1 + 1e-12)
