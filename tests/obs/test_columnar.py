"""Columnar exporters: lossless CSV round-trips, guarded parquet support."""

from __future__ import annotations

import pytest

from repro.core.errors import InvalidParameterError
from repro.obs.collector import TelemetryCollector, store_from_payload
from repro.obs.columnar import HAVE_PYARROW, CSVExporter, ParquetExporter
from repro.obs.export import available_exporters, create_exporter, exporter_for_path
from repro.obs.metrics import MetricsRegistry


def collected_payload() -> dict:
    """A realistic series payload: counter, labelled counter, histogram."""
    registry = MetricsRegistry()
    collector = TelemetryCollector(registry)
    registry.counter("traffic.ops", tenant="a", op="query").inc(3)
    registry.histogram("serve.request_seconds", tenant="a").record(1e-3)
    collector.tick(now=0.0)
    for value in (2e-3, 8e-3):
        registry.histogram("serve.request_seconds", tenant="a").record(value)
    registry.counter("traffic.ops", tenant="a", op="query").inc(4)
    registry.gauge("serve.generation").set(2)
    collector.tick(now=0.5)
    registry.counter("traffic.ops", tenant="a", op="query").inc(1)
    collector.tick(now=1.0)
    return collector.series_payload(bench="columnar-test")


def snapshot_payload() -> dict:
    registry = MetricsRegistry()
    registry.counter("c", tenant="a").inc(7)
    registry.gauge("g").set(1.5)
    registry.histogram("h").record(2e-4)
    return registry.snapshot()


class TestCSV:
    def test_registered(self) -> None:
        assert "csv" in available_exporters()
        assert isinstance(exporter_for_path("series.csv"), CSVExporter)

    def test_series_round_trip_lossless(self, tmp_path) -> None:
        exporter = create_exporter("csv")
        payload = collected_payload()
        path = exporter.export(payload, tmp_path / "series.csv")
        assert exporter.load(path) == payload

    def test_snapshot_round_trip_lossless(self, tmp_path) -> None:
        exporter = create_exporter("csv")
        payload = snapshot_payload()
        path = exporter.export(payload, tmp_path / "snap.csv")
        assert exporter.load(path) == payload

    def test_dumps_loads_inverse(self) -> None:
        exporter = CSVExporter()
        payload = collected_payload()
        assert exporter.loads(exporter.dumps(payload)) == payload

    def test_store_rebuilds_from_csv(self, tmp_path) -> None:
        exporter = create_exporter("csv")
        payload = collected_payload()
        path = exporter.export(payload, tmp_path / "series.csv")
        store = store_from_payload(exporter.load(path))
        assert "traffic.ops{op=query,tenant=a}" in store.keys()
        assert any(
            p.p99 is not None for p in store.points("serve.request_seconds{tenant=a}")
        )

    def test_one_row_per_point(self, tmp_path) -> None:
        exporter = create_exporter("csv")
        payload = collected_payload()
        text = exporter.dumps(payload)
        lines = [line for line in text.splitlines() if line.strip()]
        # meta line + header + one row per series point
        assert len(lines) == 2 + len(payload["points"])
        assert lines[0].startswith("#meta ")


class TestParquet:
    def test_registered_and_constructible_without_pyarrow(self) -> None:
        # Registration and construction must never require pyarrow; only
        # actual export/load does.
        assert "parquet" in available_exporters()
        exporter = exporter_for_path("series.parquet")
        assert isinstance(exporter, ParquetExporter)

    def test_text_api_rejected(self) -> None:
        exporter = ParquetExporter()
        with pytest.raises(InvalidParameterError, match="binary"):
            exporter.dumps({})
        with pytest.raises(InvalidParameterError, match="binary"):
            exporter.loads("")

    @pytest.mark.skipif(HAVE_PYARROW, reason="pyarrow installed")
    def test_missing_pyarrow_is_a_clean_error(self, tmp_path) -> None:
        with pytest.raises(InvalidParameterError, match="pyarrow"):
            ParquetExporter().export(collected_payload(), tmp_path / "s.parquet")

    def test_series_round_trip_lossless(self, tmp_path) -> None:
        pytest.importorskip("pyarrow")
        exporter = create_exporter("parquet")
        payload = collected_payload()
        path = exporter.export(payload, tmp_path / "series.parquet")
        assert exporter.load(path) == payload

    def test_snapshot_round_trip_lossless(self, tmp_path) -> None:
        pytest.importorskip("pyarrow")
        exporter = create_exporter("parquet")
        payload = snapshot_payload()
        path = exporter.export(payload, tmp_path / "snap.parquet")
        assert exporter.load(path) == payload
