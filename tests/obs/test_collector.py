"""TelemetryCollector sampling, TimeSeriesStore rollups, payload round-trips.

Includes the property-based invariants of the sampling pipeline: counter
deltas are never negative under monotone updates, tick batching does not
change counter delta totals, and the ring buffer keeps exactly the newest
``capacity`` points per series.
"""

from __future__ import annotations

import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import InvalidParameterError
from repro.obs.collector import (
    SeriesPoint,
    TelemetryCollector,
    TimeSeriesStore,
    series_payload,
    store_from_payload,
)
from repro.obs.metrics import MetricsRegistry


def make_collector(**kwargs) -> tuple[MetricsRegistry, TelemetryCollector]:
    registry = MetricsRegistry()
    return registry, TelemetryCollector(registry, **kwargs)


class TestTickDiffing:
    def test_first_tick_is_baseline(self) -> None:
        registry, collector = make_collector()
        registry.counter("c").inc(5)
        assert collector.tick(now=0.0) == []
        assert len(collector.store) == 0
        assert collector.last_tick == 0.0

    def test_counter_delta_and_rate(self) -> None:
        registry, collector = make_collector()
        counter = registry.counter("c", tenant="a")
        counter.inc(5)
        collector.tick(now=0.0)
        counter.inc(3)
        (point,) = collector.tick(now=2.0)
        assert point.kind == "counter"
        assert point.key == "c{tenant=a}"
        assert point.value == 8
        assert point.delta == 3
        assert point.rate == pytest.approx(1.5)

    def test_counter_restart_clamps_delta(self) -> None:
        registry, collector = make_collector()
        registry.counter("c").inc(10)
        collector.tick(now=0.0)
        registry.reset()
        registry.counter("c").inc(2)
        (point,) = collector.tick(now=1.0)
        assert point.delta == 2  # not -8

    def test_gauge_sampled_as_level(self) -> None:
        registry, collector = make_collector()
        registry.gauge("g").set(4.0)
        collector.tick(now=0.0)
        registry.gauge("g").set(7.5)
        (point,) = collector.tick(now=1.0)
        assert point.kind == "gauge"
        assert point.value == 7.5
        assert point.delta == 0.0 and point.rate == 0.0

    def test_histogram_interval_quantiles(self) -> None:
        registry, collector = make_collector()
        hist = registry.histogram("h")
        hist.record(1e-3)
        collector.tick(now=0.0)
        for value in (1e-3, 2e-3, 50e-3):
            hist.record(value)
        (point,) = collector.tick(now=1.0)
        assert point.kind == "histogram"
        assert point.delta == 3  # interval observations, not cumulative
        assert point.p50 == pytest.approx(2e-3, rel=0.25)
        assert point.p99 == pytest.approx(50e-3, rel=0.25)
        assert point.buckets and all(v > 0 for v in point.buckets.values())

    def test_quiet_histogram_interval_has_no_quantiles(self) -> None:
        registry, collector = make_collector()
        registry.histogram("h").record(1e-3)
        collector.tick(now=0.0)
        (point,) = collector.tick(now=1.0)
        assert point.delta == 0
        assert point.p50 is None and point.p99 is None and point.mean is None

    def test_time_must_strictly_advance(self) -> None:
        _, collector = make_collector()
        collector.tick(now=1.0)
        with pytest.raises(InvalidParameterError, match="advance"):
            collector.tick(now=1.0)

    def test_subscriber_called_every_tick(self) -> None:
        registry, collector = make_collector()
        seen = []
        collector.subscribe(lambda c, now: seen.append((c is collector, now)))
        collector.tick(now=0.0)
        collector.tick(now=1.0)
        assert seen == [(True, 0.0), (True, 1.0)]

    def test_background_thread_collects(self) -> None:
        registry, collector = make_collector(interval=0.01)
        counter = registry.counter("c")
        with collector:
            deadline = time.monotonic() + 2.0
            while len(collector.store) == 0 and time.monotonic() < deadline:
                counter.inc()
                time.sleep(0.002)
        assert len(collector.store) > 0
        assert collector.store.latest("c").kind == "counter"


class TestStoreAndRollups:
    def fill(self, deltas, times=None) -> TimeSeriesStore:
        store = TimeSeriesStore()
        times = times or [float(i) for i in range(1, len(deltas) + 1)]
        for t, d in zip(times, deltas):
            store.append(
                SeriesPoint(
                    time=t, metric="c", labels=(), kind="counter",
                    value=sum(deltas[: deltas.index(d) + 1]), delta=d, rate=d,
                )
            )
        return store

    def test_rollup_rate(self) -> None:
        store = self.fill([10.0, 20.0, 30.0])
        roll = store.rollup("c", window=None)
        assert roll.points == 3
        assert roll.delta == 60.0
        assert roll.rate == pytest.approx(60.0 / 3.0)

    def test_gauge_rollup_quantiles_over_values(self) -> None:
        store = TimeSeriesStore()
        for i, value in enumerate([5.0, 1.0, 3.0]):
            store.append(
                SeriesPoint(
                    time=float(i), metric="g", labels=(), kind="gauge",
                    value=value, delta=0.0, rate=0.0,
                )
            )
        roll = store.rollup("g", window=None)
        assert roll.mean == pytest.approx(3.0)
        assert roll.p50 == 3.0
        assert roll.p99 == 5.0

    def test_window_restricts_points(self) -> None:
        store = self.fill([10.0, 20.0, 30.0])
        roll = store.rollup("c", window=1.5)
        assert roll.points == 2
        assert roll.delta == 50.0

    def test_unknown_series_rollup_is_none(self) -> None:
        store = TimeSeriesStore()
        assert store.rollup("missing", window=None) is None
        assert store.window_quantile("missing", 0.99, None) is None

    def test_payload_round_trip_exact(self) -> None:
        registry, collector = make_collector()
        registry.counter("c", tenant="a").inc(2)
        registry.histogram("h").record(1e-3)
        collector.tick(now=0.0)
        registry.counter("c", tenant="a").inc(1)
        registry.histogram("h").record(2e-3)
        collector.tick(now=1.0)
        payload = collector.series_payload(run="test")
        rebuilt = store_from_payload(payload)
        assert sorted(rebuilt.keys()) == sorted(collector.store.keys())
        for key in rebuilt.keys():
            assert rebuilt.points(key) == collector.store.points(key)
        assert payload["run"] == "test"
        assert payload == series_payload(
            collector.store, interval=collector.interval, run="test"
        )


# -- property-based invariants ------------------------------------------------

increments = st.lists(st.integers(min_value=0, max_value=1_000), min_size=1, max_size=30)


class TestProperties:
    @given(increments)
    @settings(max_examples=50, deadline=None)
    def test_counter_deltas_never_negative(self, incs) -> None:
        registry, collector = make_collector()
        counter = registry.counter("c")
        collector.tick(now=0.0)
        for i, inc in enumerate(incs):
            counter.inc(inc)
            for point in collector.tick(now=float(i + 1)):
                assert point.delta >= 0
                assert point.rate >= 0

    @given(increments)
    @settings(max_examples=50, deadline=None)
    def test_tick_batching_preserves_counter_totals(self, incs) -> None:
        # One tick after all increments vs. a tick per increment: the summed
        # deltas must agree — sampling cadence never loses or invents events.
        reg_a, coarse = make_collector()
        reg_b, fine = make_collector()
        coarse.tick(now=0.0)
        fine.tick(now=0.0)
        for i, inc in enumerate(incs):
            reg_a.counter("c").inc(inc)
            reg_b.counter("c").inc(inc)
            fine.tick(now=float(i + 1))
        coarse.tick(now=float(len(incs)))
        fine_total = sum(p.delta for p in fine.store.points("c"))
        (coarse_point,) = coarse.store.points("c")
        assert coarse_point.delta == fine_total == sum(incs)

    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=40))
    @settings(max_examples=50, deadline=None)
    def test_ring_buffer_keeps_newest_capacity_points(self, capacity, n) -> None:
        store = TimeSeriesStore(capacity=capacity)
        for i in range(n):
            store.append(
                SeriesPoint(
                    time=float(i), metric="c", labels=(), kind="counter",
                    value=float(i), delta=1.0, rate=1.0,
                )
            )
        points = store.points("c")
        assert len(points) == min(capacity, n)
        assert [p.time for p in points] == [float(i) for i in range(max(0, n - capacity), n)]
