"""Unit tests for the catalog and the exact-execution layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.histogram import EquiDepthHistogram
from repro.core.errors import CatalogError, NotFittedError
from repro.core.feedback import FeedbackAdaptiveEstimator
from repro.core.kde import KDESelectivityEstimator
from repro.data.generators import gaussian_mixture_table, uniform_table
from repro.engine.catalog import Catalog
from repro.engine.executor import Executor, evaluate_estimator
from repro.engine.table import Table
from repro.workload.generators import UniformWorkload
from repro.workload.queries import RangeQuery, compile_queries


@pytest.fixture()
def catalog(small_table: Table) -> Catalog:
    catalog = Catalog()
    catalog.add_table(small_table)
    return catalog


class TestCatalog:
    def test_add_and_lookup(self, catalog: Catalog, small_table: Table) -> None:
        assert catalog.table("small") is small_table
        assert "small" in catalog
        assert len(catalog) == 1
        assert catalog.table_names() == ["small"]

    def test_unknown_table_raises(self, catalog: Catalog) -> None:
        with pytest.raises(CatalogError):
            catalog.table("missing")
        with pytest.raises(CatalogError):
            catalog.estimator("missing")

    def test_attach_estimator_fits_it(self, catalog: Catalog) -> None:
        estimator = EquiDepthHistogram(buckets=16)
        returned = catalog.attach_estimator("small", estimator)
        assert returned is estimator
        assert estimator.is_fitted
        assert catalog.estimator("small") is estimator

    def test_estimate_without_synopsis_is_exact(self, catalog: Catalog, small_table: Table) -> None:
        query = RangeQuery({"x0": (0.0, 0.5)})
        assert catalog.estimate_selectivity("small", query) == small_table.true_selectivity(query)

    def test_estimate_with_synopsis(self, catalog: Catalog, small_table: Table) -> None:
        catalog.attach_estimator("small", EquiDepthHistogram(buckets=32))
        query = RangeQuery({"x0": (0.0, 0.5)})
        estimate = catalog.estimate_selectivity("small", query)
        assert estimate == pytest.approx(small_table.true_selectivity(query), abs=0.05)
        cardinality = catalog.estimate_cardinality("small", query)
        assert cardinality == pytest.approx(estimate * small_table.row_count)

    def test_detach_estimator(self, catalog: Catalog) -> None:
        catalog.attach_estimator("small", EquiDepthHistogram(buckets=8))
        catalog.detach_estimator("small")
        assert catalog.estimator("small") is None

    def test_refresh_refits_after_append(self) -> None:
        table = uniform_table(2000, dimensions=1, seed=1, name="grow")
        catalog = Catalog()
        catalog.add_table(table)
        estimator = catalog.attach_estimator("grow", EquiDepthHistogram(buckets=16))
        assert estimator.row_count == 2000
        table.append_matrix(np.random.default_rng(2).uniform(size=(500, 1)))
        catalog.refresh("grow")
        assert estimator.row_count == 2500

    def test_describe(self, catalog: Catalog) -> None:
        catalog.attach_estimator("small", EquiDepthHistogram(buckets=8))
        description = catalog.describe()
        assert "small" in description
        assert description["small"]["rows"] == 2000
        assert description["small"]["estimator"]["name"] == "equidepth"


class TestExecutor:
    def test_execute_returns_exact_counts(self, small_table: Table) -> None:
        executor = Executor(small_table)
        query = RangeQuery({"x0": (0.0, 0.25)})
        result = executor.execute(query)
        assert result.true_count == small_table.true_count(query)
        assert result.true_fraction == pytest.approx(small_table.true_selectivity(query))
        assert result.estimated_fraction is None
        assert executor.executed == 1

    def test_execute_records_estimate(self, small_table: Table) -> None:
        executor = Executor(small_table)
        estimator = KDESelectivityEstimator(sample_size=100).fit(small_table)
        result = executor.execute(RangeQuery({"x0": (0.0, 0.5)}), estimator)
        assert result.estimated_fraction is not None
        assert result.estimated_count == pytest.approx(
            result.estimated_fraction * small_table.row_count
        )

    def test_execute_with_feedback_updates_estimator(self) -> None:
        table = gaussian_mixture_table(4000, dimensions=1, components=3, seed=51)
        executor = Executor(table)
        estimator = FeedbackAdaptiveEstimator(
            base=KDESelectivityEstimator(sample_size=128)
        ).fit(table)
        query = RangeQuery({"x0": (0.0, 2.0)})
        executor.execute_with_feedback(query, estimator)
        assert estimator.feedback_count == 1

    def test_run_workload_with_feedback_flag(self) -> None:
        table = gaussian_mixture_table(4000, dimensions=1, components=3, seed=52)
        executor = Executor(table)
        estimator = FeedbackAdaptiveEstimator(
            base=KDESelectivityEstimator(sample_size=128)
        ).fit(table)
        workload = UniformWorkload(table, volume_fraction=0.1, seed=1).generate(10)
        results = executor.run_workload(workload, estimator, feedback=True)
        assert len(results) == 10
        assert estimator.feedback_count == 10

    def test_run_workload_without_feedback(self, small_table: Table) -> None:
        executor = Executor(small_table)
        workload = UniformWorkload(small_table, volume_fraction=0.1, seed=2).generate(5)
        results = executor.run_workload(workload)
        assert len(results) == 5
        assert all(r.estimated_fraction is None for r in results)


class TestEvaluateEstimator:
    def test_shapes_and_metrics(self, small_table: Table) -> None:
        estimator = EquiDepthHistogram(buckets=32).fit(small_table)
        workload = UniformWorkload(small_table, volume_fraction=0.2, seed=3).generate(40)
        result = evaluate_estimator(small_table, estimator, workload)
        assert result.query_count == 40
        assert result.estimates.shape == (40,)
        assert result.truths.shape == (40,)
        assert result.memory_bytes == estimator.memory_bytes()
        assert result.queries_per_second > 0
        summaries = result.summaries()
        assert set(summaries) == {"absolute", "relative", "q"}
        assert result.mean_relative_error() >= 0
        assert result.mean_q_error() >= 1.0

    def test_estimator_name_override(self, small_table: Table) -> None:
        estimator = EquiDepthHistogram(buckets=8).fit(small_table)
        result = evaluate_estimator(small_table, estimator, [], name="custom")
        assert result.estimator_name == "custom"
        assert result.query_count == 0


class TestBatchPaths:
    def test_catalog_estimate_batch_without_synopsis_is_exact(
        self, catalog: Catalog, small_table: Table
    ) -> None:
        workload = UniformWorkload(small_table, volume_fraction=0.2, seed=9).generate(20)
        estimates = catalog.estimate_batch(small_table.name, workload)
        np.testing.assert_allclose(estimates, small_table.true_selectivities(workload))

    def test_catalog_estimate_batch_uses_synopsis(
        self, catalog: Catalog, small_table: Table
    ) -> None:
        estimator = catalog.attach_estimator(small_table.name, EquiDepthHistogram(buckets=16))
        workload = UniformWorkload(small_table, volume_fraction=0.2, seed=10).generate(20)
        np.testing.assert_array_equal(
            catalog.estimate_batch(small_table.name, workload),
            estimator.estimate_batch(workload),
        )
        cardinalities = catalog.estimate_cardinality_batch(small_table.name, workload)
        np.testing.assert_array_equal(
            cardinalities, estimator.estimate_batch(workload) * small_table.row_count
        )

    def test_run_workload_batch_matches_scalar_execute(self, small_table: Table) -> None:
        executor = Executor(small_table)
        estimator = EquiDepthHistogram(buckets=16).fit(small_table)
        workload = UniformWorkload(small_table, volume_fraction=0.15, seed=11).generate(15)
        results = executor.run_workload(workload, estimator)
        for query, result in zip(workload, results):
            single = Executor(small_table).execute(query, estimator)
            assert result.true_count == single.true_count
            assert result.true_fraction == single.true_fraction
            assert result.estimated_fraction == pytest.approx(
                single.estimated_fraction, abs=1e-12
            )
        assert executor.executed == len(workload)

    def test_evaluate_estimator_accepts_compiled_plan(self, small_table: Table) -> None:
        estimator = EquiDepthHistogram(buckets=16).fit(small_table)
        workload = UniformWorkload(small_table, volume_fraction=0.2, seed=12).generate(25)
        plan = compile_queries(workload, estimator.columns)
        from_plan = evaluate_estimator(small_table, estimator, plan)
        from_list = evaluate_estimator(small_table, estimator, workload)
        np.testing.assert_array_equal(from_plan.estimates, from_list.estimates)
        np.testing.assert_array_equal(from_plan.truths, from_list.truths)
        assert from_plan.queries_per_second > 0

    def test_evaluate_estimator_unfitted_raises(self, small_table: Table) -> None:
        with pytest.raises(NotFittedError):
            evaluate_estimator(small_table, EquiDepthHistogram(buckets=4), [])
