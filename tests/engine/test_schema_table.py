"""Unit tests for TableSchema, dictionary encoding and the stats cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import InvalidParameterError, SchemaError
from repro.engine.table import ColumnKind, Table, TableSchema
from repro.shard.partition import make_partitioner, partition_table
from repro.workload.queries import (
    Interval,
    RangeQuery,
    SetMembership,
    StringPrefix,
    TypedQuery,
)


@pytest.fixture()
def schema() -> TableSchema:
    return TableSchema({"region": "categorical", "product": "string"})


@pytest.fixture()
def table(schema: TableSchema) -> Table:
    return Table(
        "orders",
        {
            "amount": [10.0, 20.0, 30.0, 40.0, 50.0],
            "region": ["west", "east", "west", "north", "east"],
            "product": ["auto-1", "bio-2", "auto-3", "chem-4", "auto-1"],
        },
        schema=schema,
    )


class TestTableSchema:
    def test_kinds_default_numeric(self, schema: TableSchema) -> None:
        assert schema.kind("region") is ColumnKind.CATEGORICAL
        assert schema.kind("product") is ColumnKind.STRING
        assert schema.kind("amount") is ColumnKind.NUMERIC
        assert schema.encoded_columns == ("product", "region")
        assert not schema.is_encoded("amount")

    def test_unknown_kind_rejected(self) -> None:
        with pytest.raises(SchemaError):
            TableSchema({"x": "varchar"})

    def test_dictionary_must_be_sorted_unique(self) -> None:
        with pytest.raises(SchemaError):
            TableSchema({"c": "categorical"}, {"c": ["b", "a"]})
        with pytest.raises(SchemaError):
            TableSchema({"c": "categorical"}, {"c": ["a", "a"]})

    def test_dictionary_for_numeric_column_rejected(self) -> None:
        with pytest.raises(SchemaError):
            TableSchema({}, {"x": ["a"]})

    def test_encode_decode_roundtrip(self) -> None:
        schema = TableSchema({"c": "categorical"}, {"c": ["a", "b", "c"]})
        codes = schema.encode("c", ["c", "a", "b", "a"])
        np.testing.assert_array_equal(codes, [2.0, 0.0, 1.0, 0.0])
        np.testing.assert_array_equal(schema.decode("c", codes), ["c", "a", "b", "a"])

    def test_encode_unknown_value_raises(self) -> None:
        schema = TableSchema({"c": "categorical"}, {"c": ["a", "b"]})
        with pytest.raises(SchemaError):
            schema.encode("c", ["a", "zzz"])

    def test_extend_dictionary_returns_remap(self) -> None:
        schema = TableSchema({"c": "categorical"}, {"c": ["b", "d"]})
        remap = schema.extend_dictionary("c", ["a", "c"])
        assert remap is not None
        # old codes: b=0, d=1 -> new dictionary a,b,c,d: b=1, d=3
        np.testing.assert_array_equal(remap, [1, 3])
        assert schema.dictionary("c") == ("a", "b", "c", "d")

    def test_extend_with_known_values_is_noop(self) -> None:
        schema = TableSchema({"c": "categorical"}, {"c": ["a", "b"]})
        assert schema.extend_dictionary("c", ["b", "a"]) is None
        assert schema.dictionary("c") == ("a", "b")

    def test_json_roundtrip_preserves_dictionaries_bitwise(self, table: Table) -> None:
        payload = table.schema.to_json()
        restored = TableSchema.from_json(payload)
        assert restored == table.schema
        assert restored.dictionary("region") == table.schema.dictionary("region")
        assert restored.to_json() == payload

    def test_from_json_rejects_newer_version(self) -> None:
        with pytest.raises(SchemaError):
            TableSchema.from_json({"schema_version": 99, "kinds": {}})

    def test_copy_is_independent(self, schema: TableSchema) -> None:
        schema.extend_dictionary("region", ["west"])
        clone = schema.copy()
        clone.extend_dictionary("region", ["zzz"])
        assert schema.dictionary("region") == ("west",)
        assert clone.dictionary("region") == ("west", "zzz")

    def test_predicate_runs_merges_consecutive_codes(self) -> None:
        schema = TableSchema({"c": "categorical"}, {"c": ["a", "b", "c", "e", "g"]})
        runs = schema.predicate_runs("c", SetMembership(["a", "b", "c", "g"]))
        np.testing.assert_array_equal(runs, [[0.0, 2.0], [4.0, 4.0]])

    def test_predicate_runs_prefix_single_interval(self) -> None:
        schema = TableSchema(
            {"s": "string"}, {"s": ["auto-1", "auto-2", "bio-1", "bio-2", "chem-1"]}
        )
        np.testing.assert_array_equal(
            schema.predicate_runs("s", StringPrefix("bio")), [[2.0, 3.0]]
        )
        np.testing.assert_array_equal(
            schema.predicate_runs("s", StringPrefix("")), [[0.0, 4.0]]
        )
        assert schema.predicate_runs("s", StringPrefix("zzz")).shape == (0, 2)

    def test_prefix_on_categorical_rejected(self, schema: TableSchema) -> None:
        schema.extend_dictionary("region", ["west"])
        with pytest.raises(SchemaError):
            schema.predicate_runs("region", StringPrefix("we"))

    def test_numeric_in_set_becomes_point_runs(self) -> None:
        schema = TableSchema()
        runs = schema.predicate_runs("x", SetMembership([3.0, 1.0]))
        np.testing.assert_array_equal(runs, [[1.0, 1.0], [3.0, 3.0]])

    def test_interval_passes_through(self) -> None:
        schema = TableSchema()
        np.testing.assert_array_equal(
            schema.predicate_runs("x", Interval(1.0, 2.0)), [[1.0, 2.0]]
        )


class TestEncodedTable:
    def test_string_columns_are_encoded(self, table: Table) -> None:
        assert table.schema is not None
        assert table.schema.dictionary("region") == ("east", "north", "west")
        np.testing.assert_array_equal(table.column("region"), [2.0, 0.0, 2.0, 1.0, 0.0])
        np.testing.assert_array_equal(
            table.decoded("region"), ["west", "east", "west", "north", "east"]
        )

    def test_schema_is_copied_on_construction(self, schema: TableSchema) -> None:
        Table("t", {"region": ["a"], "product": ["p"]}, schema=schema)
        # The caller's schema object must not have been mutated.
        assert not schema.has_dictionary("region")

    def test_undeclared_string_column_raises(self) -> None:
        with pytest.raises(InvalidParameterError):
            Table("t", {"s": ["a", "b"]})

    def test_precoded_numeric_input_validated(self, table: Table) -> None:
        good = Table(
            "t2",
            {"amount": [1.0], "region": [2.0], "product": [0.0]},
            schema=table.schema,
        )
        assert good.decoded("region")[0] == "west"
        with pytest.raises(SchemaError):
            Table(
                "t3",
                {"amount": [1.0], "region": [7.0], "product": [0.0]},
                schema=table.schema,
            )
        with pytest.raises(SchemaError):
            Table(
                "t4",
                {"amount": [1.0], "region": [0.5], "product": [0.0]},
                schema=table.schema,
            )

    def test_append_novel_value_recodes_existing_rows(self, table: Table) -> None:
        before = table.decoded("region").tolist()
        table.append_rows(
            {"amount": [60.0], "region": ["central"], "product": ["auto-9"]}
        )
        assert table.schema.dictionary("region") == ("central", "east", "north", "west")
        # Existing rows still decode to the same strings after the recode.
        assert table.decoded("region")[:-1].tolist() == before
        assert table.decoded("region")[-1] == "central"
        assert table.row_count == 6

    def test_typed_selection_mask(self, table: Table) -> None:
        query = TypedQuery(
            {"region": SetMembership(["west"]), "product": StringPrefix("auto")}
        )
        np.testing.assert_array_equal(
            table.selection_mask(query), [True, False, True, False, False]
        )
        assert table.true_count(query) == 2
        assert table.true_selectivity(query) == pytest.approx(0.4)

    def test_typed_true_counts_match_scalar(self, table: Table) -> None:
        queries = [
            TypedQuery({"region": SetMembership(["east", "west"])}),
            TypedQuery({"product": StringPrefix("bio"), "amount": (0.0, 100.0)}),
            TypedQuery({"region": SetMembership(["nowhere"])}),
            RangeQuery({"amount": (15.0, 45.0)}),
        ]
        counts = table.true_counts(queries)
        np.testing.assert_array_equal(counts, [table.true_count(q) for q in queries])

    def test_select_and_sample_preserve_schema(self, table: Table) -> None:
        selected = table.select(TypedQuery({"product": StringPrefix("auto")}))
        assert selected.schema == table.schema
        assert set(selected.decoded("product")) == {"auto-1", "auto-3"}
        sampled = table.sample(2, np.random.default_rng(0))
        assert sampled.schema == table.schema

    def test_partition_table_preserves_schema(self, table: Table) -> None:
        shards = partition_table(table, make_partitioner("hash", 2), ["region"])
        assert sum(s.row_count for s in shards) == table.row_count
        for shard in shards:
            assert shard.schema == table.schema
            if shard.row_count:
                shard.decoded("region")  # codes stay valid under the shared dictionary

    def test_numeric_table_unchanged_without_schema(self) -> None:
        plain = Table("plain", {"x": [1.0, 2.0]})
        assert plain.schema is None


class TestStatsCache:
    def test_stats_cached_until_append(self) -> None:
        table = Table("t", {"x": [1.0, 2.0, 2.0]})
        first = table.stats("x")
        assert table.stats("x") is first
        assert first.distinct == 2
        table.append_rows({"x": [3.0]})
        second = table.stats("x")
        assert second is not first
        assert second.count == 4
        assert second.distinct == 3

    def test_domain_uses_cache(self) -> None:
        table = Table("t", {"x": [1.0, 5.0]})
        assert table.domain()["x"] == (1.0, 5.0)
        table.append_rows({"x": [9.0]})
        assert table.domain()["x"] == (1.0, 9.0)

    def test_cache_is_per_column(self) -> None:
        table = Table("t", {"x": [1.0], "y": [2.0]})
        sx = table.stats("x")
        sy = table.stats("y")
        assert sx is not sy
        assert table.stats("y") is sy
