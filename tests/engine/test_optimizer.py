"""Unit tests for the toy cost-based join-order optimizer."""

from __future__ import annotations

import numpy as np
import pytest

from repro import create_estimator
from repro.baselines.independence import IndependenceEstimator
from repro.core.errors import CatalogError, InvalidParameterError
from repro.data.generators import uniform_table, zipf_table
from repro.engine.catalog import Catalog
from repro.engine.optimizer import (
    JoinSpec,
    Optimizer,
    estimate_join_selectivity,
    exact_join_selectivity,
    plan_regret,
)
from repro.engine.table import Table, TableSchema
from repro.workload.queries import RangeQuery


@pytest.fixture()
def star_catalog() -> Catalog:
    catalog = Catalog()
    catalog.add_table(uniform_table(50_000, dimensions=1, seed=1, name="fact", column_names=["m"]))
    catalog.add_table(zipf_table(5_000, dimensions=1, theta=1.0, seed=2, name="dim_a", column_names=["a"]))
    catalog.add_table(uniform_table(2_000, dimensions=1, seed=3, name="dim_b", column_names=["b"]))
    return catalog


@pytest.fixture()
def spec() -> JoinSpec:
    return JoinSpec(
        tables=("fact", "dim_a", "dim_b"),
        filters={
            "fact": RangeQuery({"m": (0.0, 0.5)}),
            "dim_a": RangeQuery({"a": (0.0, 100.0)}),
            "dim_b": RangeQuery({"b": (0.0, 0.1)}),
        },
        join_selectivities={
            frozenset(("fact", "dim_a")): 1.0 / 5000,
            frozenset(("fact", "dim_b")): 1.0 / 2000,
            frozenset(("dim_a", "dim_b")): 1.0,
        },
    )


class TestJoinSpec:
    def test_invalid_specs(self) -> None:
        with pytest.raises(InvalidParameterError):
            JoinSpec(("a",), {}, {})
        with pytest.raises(InvalidParameterError):
            JoinSpec(("a", "a"), {}, {})
        with pytest.raises(InvalidParameterError):
            JoinSpec(("a", "b"), {}, {frozenset(("a", "b")): 2.0})
        with pytest.raises(InvalidParameterError):
            JoinSpec(("a", "b"), {}, {frozenset(("a",)): 0.5})

    def test_join_selectivity_lookup(self, spec: JoinSpec) -> None:
        assert spec.join_selectivity("fact", "dim_a") == pytest.approx(1.0 / 5000)
        assert spec.join_selectivity("dim_a", "fact") == pytest.approx(1.0 / 5000)
        other = JoinSpec(("a", "b"), {}, {}, default_join_selectivity=0.5)
        assert other.join_selectivity("a", "b") == 0.5


class TestOptimizer:
    def test_enumerates_all_left_deep_orders(self, star_catalog: Catalog, spec: JoinSpec) -> None:
        plans = Optimizer(star_catalog).enumerate_plans(spec)
        assert len(plans) == 6  # 3! permutations
        orders = {plan.order for plan in plans}
        assert len(orders) == 6

    def test_unknown_table_raises(self, star_catalog: Catalog) -> None:
        bad = JoinSpec(("fact", "ghost"), {}, {})
        with pytest.raises(CatalogError):
            Optimizer(star_catalog).enumerate_plans(bad)

    def test_best_plan_minimises_cost(self, star_catalog: Catalog, spec: JoinSpec) -> None:
        optimizer = Optimizer(star_catalog)
        best = optimizer.best_plan(spec, use_estimates=False)
        for plan in optimizer.enumerate_plans(spec, use_estimates=False):
            assert best.true_cost <= plan.true_cost + 1e-9

    def test_exact_estimates_give_no_regret(self, star_catalog: Catalog, spec: JoinSpec) -> None:
        # No synopsis attached: the catalog answers with exact selectivities.
        assert plan_regret(Optimizer(star_catalog), spec) == pytest.approx(1.0)

    def test_regret_at_least_one(self, star_catalog: Catalog, spec: JoinSpec) -> None:
        for table_name in star_catalog.table_names():
            star_catalog.attach_estimator(table_name, IndependenceEstimator())
        regret = plan_regret(Optimizer(star_catalog), spec)
        assert regret >= 1.0 - 1e-9

    def test_plan_str_mentions_tables(self, star_catalog: Catalog, spec: JoinSpec) -> None:
        plan = Optimizer(star_catalog).best_plan(spec)
        assert "fact" in str(plan)

    def test_filters_reduce_cost(self, star_catalog: Catalog, spec: JoinSpec) -> None:
        optimizer = Optimizer(star_catalog)
        unfiltered = JoinSpec(spec.tables, {}, dict(spec.join_selectivities))
        filtered_cost = optimizer.best_plan(spec, use_estimates=False).true_cost
        unfiltered_cost = optimizer.best_plan(unfiltered, use_estimates=False).true_cost
        assert filtered_cost < unfiltered_cost


class TestPlanRegretEdgeCases:
    """Satellite coverage: plan_regret on the smallest joins, tied costs and
    the default join-selectivity fallback."""

    @pytest.fixture()
    def two_table_catalog(self) -> Catalog:
        catalog = Catalog()
        catalog.add_table(
            uniform_table(10_000, dimensions=1, seed=21, name="big", column_names=["x"])
        )
        catalog.add_table(
            uniform_table(500, dimensions=1, seed=22, name="small", column_names=["y"])
        )
        return catalog

    def test_two_table_join_both_orders_enumerated(self, two_table_catalog) -> None:
        spec = JoinSpec(
            tables=("big", "small"),
            filters={},
            join_selectivities={frozenset(("big", "small")): 1e-3},
        )
        plans = Optimizer(two_table_catalog).enumerate_plans(spec)
        assert len(plans) == 2
        # A two-way left-deep join has one intermediate (the result): both
        # orders cost the same, and regret is exactly 1.
        assert plans[0].true_cost == pytest.approx(plans[1].true_cost)
        assert plan_regret(Optimizer(two_table_catalog), spec) == pytest.approx(1.0)

    def test_two_table_regret_is_one_even_with_bad_estimates(
        self, two_table_catalog
    ) -> None:
        # With two tables the plan space is symmetric in true cost: even the
        # worst estimator cannot pick a worse-than-optimal join order.
        for name in two_table_catalog.table_names():
            two_table_catalog.attach_estimator(name, IndependenceEstimator("normal"))
        spec = JoinSpec(
            tables=("big", "small"),
            filters={
                "big": RangeQuery({"x": (0.0, 0.2)}),
                "small": RangeQuery({"y": (0.5, 1.0)}),
            },
            join_selectivities={frozenset(("big", "small")): 1e-3},
        )
        assert plan_regret(Optimizer(two_table_catalog), spec) == pytest.approx(1.0)

    def test_tied_costs_give_unit_regret(self) -> None:
        # Identical tables and symmetric join selectivities: every order has
        # the same true cost, min() tie-breaks arbitrarily, regret must be 1.
        catalog = Catalog()
        for name in ("a", "b", "c"):
            catalog.add_table(
                uniform_table(1000, dimensions=1, seed=7, name=name, column_names=["v"])
            )
        spec = JoinSpec(
            tables=("a", "b", "c"),
            filters={},
            join_selectivities={},
            default_join_selectivity=0.01,
        )
        optimizer = Optimizer(catalog)
        plans = optimizer.enumerate_plans(spec)
        costs = {round(plan.true_cost, 6) for plan in plans}
        assert len(costs) == 1
        assert plan_regret(optimizer, spec) == pytest.approx(1.0)

    def test_missing_pair_falls_back_to_default_selectivity(
        self, two_table_catalog
    ) -> None:
        # No explicit entry for the pair: the default selectivity applies.
        spec = JoinSpec(
            tables=("big", "small"),
            filters={},
            join_selectivities={},
            default_join_selectivity=0.5,
        )
        plan = Optimizer(two_table_catalog).best_plan(spec, use_estimates=False)
        assert plan.true_cost == pytest.approx(10_000 * 500 * 0.5)
        # An explicit entry overrides the default for that pair only.
        overridden = JoinSpec(
            tables=("big", "small"),
            filters={},
            join_selectivities={frozenset(("big", "small")): 0.25},
            default_join_selectivity=0.5,
        )
        plan = Optimizer(two_table_catalog).best_plan(overridden, use_estimates=False)
        assert plan.true_cost == pytest.approx(10_000 * 500 * 0.25)

    def test_zero_true_cost_defines_unit_regret(self) -> None:
        # A filter selecting nothing makes every plan cost 0; the regret
        # ratio would be 0/0 and is defined as 1.
        catalog = Catalog()
        for name in ("a", "b"):
            catalog.add_table(
                uniform_table(100, dimensions=1, seed=8, name=name, column_names=["v"])
            )
        spec = JoinSpec(
            tables=("a", "b"),
            filters={"a": RangeQuery({"v": (99.0, 100.0)})},
            join_selectivities={},
        )
        assert plan_regret(Optimizer(catalog), spec) == pytest.approx(1.0)

    def test_join_key_validation(self) -> None:
        with pytest.raises(InvalidParameterError):
            JoinSpec(("a", "b"), {}, {}, join_keys={frozenset(("a",)): {"a": "x"}})
        with pytest.raises(InvalidParameterError):
            JoinSpec(
                ("a", "b"),
                {},
                {},
                join_keys={frozenset(("a", "b")): {"a": "x", "c": "y"}},
            )

    def test_adversarial_estimates_realise_regret_above_one(
        self, star_catalog, spec
    ) -> None:
        # The metric must actually separate good from bad estimates: an
        # adversarially inverted estimator picks a provably wrong join order
        # on this star query (regret ≈ 4.1), so regret > 1 strictly.
        class Opposite(IndependenceEstimator):
            def _estimate_batch(self, lows, highs):
                return 1.0 - super()._estimate_batch(lows, highs)

        for table_name in star_catalog.table_names():
            star_catalog.attach_estimator(table_name, Opposite())
        optimizer = Optimizer(star_catalog)
        assert (
            optimizer.best_plan(spec, use_estimates=True).order
            != optimizer.best_plan(spec, use_estimates=False).order
        )
        assert plan_regret(optimizer, spec) > 1.0


class TestJoinSelectivity:
    """Exact and synopsis-backed equi-join selectivities."""

    def test_exact_matches_brute_force(self) -> None:
        rng = np.random.default_rng(5)
        left = Table("l", {"k": rng.integers(0, 20, size=300).astype(float)})
        right = Table("r", {"k": rng.integers(10, 30, size=200).astype(float)})
        expected = float(
            np.sum(left.column("k")[:, None] == right.column("k")[None, :])
        ) / (300 * 200)
        assert exact_join_selectivity(left, "k", right, "k") == pytest.approx(expected)

    def test_exact_reduces_to_one_over_ndv_on_fk_join(self) -> None:
        rng = np.random.default_rng(6)
        dim = Table("dim", {"k": np.arange(500, dtype=float)})
        fact = Table("fact", {"k": rng.integers(0, 500, size=4000).astype(float)})
        assert exact_join_selectivity(fact, "k", dim, "k") == pytest.approx(1.0 / 500)

    def test_exact_joins_encoded_columns_by_value(self) -> None:
        # Different dictionaries assign different codes to the same strings:
        # the join must compare decoded values, not codes.
        left = Table(
            "l",
            {"c": ["a", "b", "b", "z"]},
            schema=TableSchema({"c": "categorical"}),
        )
        right = Table(
            "r",
            {"c": ["b", "m", "z", "z"]},
            schema=TableSchema({"c": "categorical"}),
        )
        assert left.schema.dictionary("c") != right.schema.dictionary("c")
        # matches: b->2*1, z->1*2 => 4 of 16 pairs
        assert exact_join_selectivity(left, "c", right, "c") == pytest.approx(4 / 16)

    def test_exact_encoded_vs_numeric_is_zero(self) -> None:
        left = Table("l", {"c": ["a", "b"]}, schema=TableSchema({"c": "categorical"}))
        right = Table("r", {"c": [0.0, 1.0]})
        assert exact_join_selectivity(left, "c", right, "c") == 0.0

    def test_estimate_close_to_one_over_ndv_on_fk_join(self) -> None:
        catalog = Catalog()
        rng = np.random.default_rng(7)
        catalog.add_table(Table("dim", {"k": np.arange(1000, dtype=float)}))
        # Skewed fact side: the estimate must still land near 1/ndv(dim).
        skew = np.minimum((rng.pareto(1.5, size=8000) * 50).astype(int), 999)
        catalog.add_table(Table("fact", {"k": skew.astype(float)}))
        for name in ("dim", "fact"):
            catalog.attach_estimator(name, create_estimator("equidepth", buckets=64))
        estimate = estimate_join_selectivity(catalog, "fact", "k", "dim", "k")
        assert estimate == pytest.approx(1.0 / 1000, rel=0.5)

    def test_estimate_zero_on_disjoint_domains(self) -> None:
        catalog = Catalog()
        catalog.add_table(Table("l", {"k": [0.0, 1.0, 2.0]}))
        catalog.add_table(Table("r", {"k": [10.0, 11.0]}))
        assert estimate_join_selectivity(catalog, "l", "k", "r", "k") == 0.0

    def test_estimate_containment_fallback_on_dictionary_mismatch(self) -> None:
        catalog = Catalog()
        catalog.add_table(
            Table("l", {"c": ["a", "b", "c"]}, schema=TableSchema({"c": "categorical"}))
        )
        catalog.add_table(
            Table("r", {"c": ["b", "x"]}, schema=TableSchema({"c": "categorical"}))
        )
        assert estimate_join_selectivity(catalog, "l", "c", "r", "c") == pytest.approx(
            1.0 / 3
        )


class TestEstimatorBackedJoinOrdering:
    """Acceptance: the optimizer derives join selectivities from synopses for
    ``join_keys`` pairs instead of trusting the default fallback."""

    @pytest.fixture()
    def fk_catalog(self) -> Catalog:
        rng = np.random.default_rng(11)
        catalog = Catalog()
        catalog.add_table(
            Table(
                "fact",
                {
                    "a": rng.integers(0, 1000, size=20_000).astype(float),
                    "b": rng.integers(0, 10, size=20_000).astype(float),
                },
            )
        )
        catalog.add_table(Table("dim_a", {"a": np.arange(1000, dtype=float)}))
        catalog.add_table(
            Table("dim_b", {"b": np.repeat(np.arange(10, dtype=float), 200)})
        )
        return catalog

    @pytest.fixture()
    def fk_spec(self) -> JoinSpec:
        return JoinSpec(
            tables=("fact", "dim_a", "dim_b"),
            filters={},
            join_selectivities={},
            join_keys={
                frozenset(("fact", "dim_a")): {"fact": "a", "dim_a": "a"},
                frozenset(("fact", "dim_b")): {"fact": "b", "dim_b": "b"},
            },
        )

    def test_default_fallback_picks_worse_order(self, fk_catalog, fk_spec) -> None:
        # Without synopses the estimated costs use the default selectivity
        # (1.0) for every pair, which starts the join with the two dimension
        # tables — a provably worse order once true FK selectivities apply.
        optimizer = Optimizer(fk_catalog)
        chosen = optimizer.best_plan(fk_spec, use_estimates=True)
        optimal = optimizer.best_plan(fk_spec, use_estimates=False)
        assert chosen.order != optimal.order
        assert optimal.order[:2] == ("fact", "dim_a")
        assert plan_regret(optimizer, fk_spec) > 1.0

    def test_synopses_recover_the_better_order(self, fk_catalog, fk_spec) -> None:
        for name in fk_catalog.table_names():
            fk_catalog.attach_estimator(name, create_estimator("equidepth", buckets=64))
        optimizer = Optimizer(fk_catalog)
        chosen = optimizer.best_plan(fk_spec, use_estimates=True)
        optimal = optimizer.best_plan(fk_spec, use_estimates=False)
        assert chosen.order == optimal.order
        assert plan_regret(optimizer, fk_spec) == pytest.approx(1.0)

    def test_explicit_selectivity_overrides_join_keys(self, fk_catalog) -> None:
        spec = JoinSpec(
            tables=("fact", "dim_a"),
            filters={},
            join_selectivities={frozenset(("fact", "dim_a")): 0.5},
            join_keys={frozenset(("fact", "dim_a")): {"fact": "a", "dim_a": "a"}},
        )
        plan = Optimizer(fk_catalog).best_plan(spec, use_estimates=False)
        assert plan.true_cost == pytest.approx(20_000 * 1000 * 0.5)

    def test_true_cost_uses_exact_join_selectivity(self, fk_catalog, fk_spec) -> None:
        optimizer = Optimizer(fk_catalog)
        plans = {p.order: p for p in optimizer.enumerate_plans(fk_spec)}
        fact_dim_a_first = plans[("fact", "dim_a", "dim_b")]
        sel_fa = exact_join_selectivity(
            fk_catalog.table("fact"), "a", fk_catalog.table("dim_a"), "a"
        )
        sel_fb = exact_join_selectivity(
            fk_catalog.table("fact"), "b", fk_catalog.table("dim_b"), "b"
        )
        first = 20_000 * 1000 * sel_fa
        second = first * 2000 * sel_fb  # dim_a x dim_b has no key: default 1.0
        assert fact_dim_a_first.true_cost == pytest.approx(first + second)
