"""Unit tests for the toy cost-based join-order optimizer."""

from __future__ import annotations

import pytest

from repro.baselines.independence import IndependenceEstimator
from repro.core.errors import CatalogError, InvalidParameterError
from repro.data.generators import uniform_table, zipf_table
from repro.engine.catalog import Catalog
from repro.engine.optimizer import JoinSpec, Optimizer, plan_regret
from repro.workload.queries import RangeQuery


@pytest.fixture()
def star_catalog() -> Catalog:
    catalog = Catalog()
    catalog.add_table(uniform_table(50_000, dimensions=1, seed=1, name="fact", column_names=["m"]))
    catalog.add_table(zipf_table(5_000, dimensions=1, theta=1.0, seed=2, name="dim_a", column_names=["a"]))
    catalog.add_table(uniform_table(2_000, dimensions=1, seed=3, name="dim_b", column_names=["b"]))
    return catalog


@pytest.fixture()
def spec() -> JoinSpec:
    return JoinSpec(
        tables=("fact", "dim_a", "dim_b"),
        filters={
            "fact": RangeQuery({"m": (0.0, 0.5)}),
            "dim_a": RangeQuery({"a": (0.0, 100.0)}),
            "dim_b": RangeQuery({"b": (0.0, 0.1)}),
        },
        join_selectivities={
            frozenset(("fact", "dim_a")): 1.0 / 5000,
            frozenset(("fact", "dim_b")): 1.0 / 2000,
            frozenset(("dim_a", "dim_b")): 1.0,
        },
    )


class TestJoinSpec:
    def test_invalid_specs(self) -> None:
        with pytest.raises(InvalidParameterError):
            JoinSpec(("a",), {}, {})
        with pytest.raises(InvalidParameterError):
            JoinSpec(("a", "a"), {}, {})
        with pytest.raises(InvalidParameterError):
            JoinSpec(("a", "b"), {}, {frozenset(("a", "b")): 2.0})
        with pytest.raises(InvalidParameterError):
            JoinSpec(("a", "b"), {}, {frozenset(("a",)): 0.5})

    def test_join_selectivity_lookup(self, spec: JoinSpec) -> None:
        assert spec.join_selectivity("fact", "dim_a") == pytest.approx(1.0 / 5000)
        assert spec.join_selectivity("dim_a", "fact") == pytest.approx(1.0 / 5000)
        other = JoinSpec(("a", "b"), {}, {}, default_join_selectivity=0.5)
        assert other.join_selectivity("a", "b") == 0.5


class TestOptimizer:
    def test_enumerates_all_left_deep_orders(self, star_catalog: Catalog, spec: JoinSpec) -> None:
        plans = Optimizer(star_catalog).enumerate_plans(spec)
        assert len(plans) == 6  # 3! permutations
        orders = {plan.order for plan in plans}
        assert len(orders) == 6

    def test_unknown_table_raises(self, star_catalog: Catalog) -> None:
        bad = JoinSpec(("fact", "ghost"), {}, {})
        with pytest.raises(CatalogError):
            Optimizer(star_catalog).enumerate_plans(bad)

    def test_best_plan_minimises_cost(self, star_catalog: Catalog, spec: JoinSpec) -> None:
        optimizer = Optimizer(star_catalog)
        best = optimizer.best_plan(spec, use_estimates=False)
        for plan in optimizer.enumerate_plans(spec, use_estimates=False):
            assert best.true_cost <= plan.true_cost + 1e-9

    def test_exact_estimates_give_no_regret(self, star_catalog: Catalog, spec: JoinSpec) -> None:
        # No synopsis attached: the catalog answers with exact selectivities.
        assert plan_regret(Optimizer(star_catalog), spec) == pytest.approx(1.0)

    def test_regret_at_least_one(self, star_catalog: Catalog, spec: JoinSpec) -> None:
        for table_name in star_catalog.table_names():
            star_catalog.attach_estimator(table_name, IndependenceEstimator())
        regret = plan_regret(Optimizer(star_catalog), spec)
        assert regret >= 1.0 - 1e-9

    def test_plan_str_mentions_tables(self, star_catalog: Catalog, spec: JoinSpec) -> None:
        plan = Optimizer(star_catalog).best_plan(spec)
        assert "fact" in str(plan)

    def test_filters_reduce_cost(self, star_catalog: Catalog, spec: JoinSpec) -> None:
        optimizer = Optimizer(star_catalog)
        unfiltered = JoinSpec(spec.tables, {}, dict(spec.join_selectivities))
        filtered_cost = optimizer.best_plan(spec, use_estimates=False).true_cost
        unfiltered_cost = optimizer.best_plan(unfiltered, use_estimates=False).true_cost
        assert filtered_cost < unfiltered_cost


class TestPlanRegretEdgeCases:
    """Satellite coverage: plan_regret on the smallest joins, tied costs and
    the default join-selectivity fallback."""

    @pytest.fixture()
    def two_table_catalog(self) -> Catalog:
        catalog = Catalog()
        catalog.add_table(
            uniform_table(10_000, dimensions=1, seed=21, name="big", column_names=["x"])
        )
        catalog.add_table(
            uniform_table(500, dimensions=1, seed=22, name="small", column_names=["y"])
        )
        return catalog

    def test_two_table_join_both_orders_enumerated(self, two_table_catalog) -> None:
        spec = JoinSpec(
            tables=("big", "small"),
            filters={},
            join_selectivities={frozenset(("big", "small")): 1e-3},
        )
        plans = Optimizer(two_table_catalog).enumerate_plans(spec)
        assert len(plans) == 2
        # A two-way left-deep join has one intermediate (the result): both
        # orders cost the same, and regret is exactly 1.
        assert plans[0].true_cost == pytest.approx(plans[1].true_cost)
        assert plan_regret(Optimizer(two_table_catalog), spec) == pytest.approx(1.0)

    def test_two_table_regret_is_one_even_with_bad_estimates(
        self, two_table_catalog
    ) -> None:
        # With two tables the plan space is symmetric in true cost: even the
        # worst estimator cannot pick a worse-than-optimal join order.
        for name in two_table_catalog.table_names():
            two_table_catalog.attach_estimator(name, IndependenceEstimator("normal"))
        spec = JoinSpec(
            tables=("big", "small"),
            filters={
                "big": RangeQuery({"x": (0.0, 0.2)}),
                "small": RangeQuery({"y": (0.5, 1.0)}),
            },
            join_selectivities={frozenset(("big", "small")): 1e-3},
        )
        assert plan_regret(Optimizer(two_table_catalog), spec) == pytest.approx(1.0)

    def test_tied_costs_give_unit_regret(self) -> None:
        # Identical tables and symmetric join selectivities: every order has
        # the same true cost, min() tie-breaks arbitrarily, regret must be 1.
        catalog = Catalog()
        for name in ("a", "b", "c"):
            catalog.add_table(
                uniform_table(1000, dimensions=1, seed=7, name=name, column_names=["v"])
            )
        spec = JoinSpec(
            tables=("a", "b", "c"),
            filters={},
            join_selectivities={},
            default_join_selectivity=0.01,
        )
        optimizer = Optimizer(catalog)
        plans = optimizer.enumerate_plans(spec)
        costs = {round(plan.true_cost, 6) for plan in plans}
        assert len(costs) == 1
        assert plan_regret(optimizer, spec) == pytest.approx(1.0)

    def test_missing_pair_falls_back_to_default_selectivity(
        self, two_table_catalog
    ) -> None:
        # No explicit entry for the pair: the default selectivity applies.
        spec = JoinSpec(
            tables=("big", "small"),
            filters={},
            join_selectivities={},
            default_join_selectivity=0.5,
        )
        plan = Optimizer(two_table_catalog).best_plan(spec, use_estimates=False)
        assert plan.true_cost == pytest.approx(10_000 * 500 * 0.5)
        # An explicit entry overrides the default for that pair only.
        overridden = JoinSpec(
            tables=("big", "small"),
            filters={},
            join_selectivities={frozenset(("big", "small")): 0.25},
            default_join_selectivity=0.5,
        )
        plan = Optimizer(two_table_catalog).best_plan(overridden, use_estimates=False)
        assert plan.true_cost == pytest.approx(10_000 * 500 * 0.25)

    def test_zero_true_cost_defines_unit_regret(self) -> None:
        # A filter selecting nothing makes every plan cost 0; the regret
        # ratio would be 0/0 and is defined as 1.
        catalog = Catalog()
        for name in ("a", "b"):
            catalog.add_table(
                uniform_table(100, dimensions=1, seed=8, name=name, column_names=["v"])
            )
        spec = JoinSpec(
            tables=("a", "b"),
            filters={"a": RangeQuery({"v": (99.0, 100.0)})},
            join_selectivities={},
        )
        assert plan_regret(Optimizer(catalog), spec) == pytest.approx(1.0)

    def test_adversarial_estimates_realise_regret_above_one(
        self, star_catalog, spec
    ) -> None:
        # The metric must actually separate good from bad estimates: an
        # adversarially inverted estimator picks a provably wrong join order
        # on this star query (regret ≈ 4.1), so regret > 1 strictly.
        class Opposite(IndependenceEstimator):
            def _estimate_batch(self, lows, highs):
                return 1.0 - super()._estimate_batch(lows, highs)

        for table_name in star_catalog.table_names():
            star_catalog.attach_estimator(table_name, Opposite())
        optimizer = Optimizer(star_catalog)
        assert (
            optimizer.best_plan(spec, use_estimates=True).order
            != optimizer.best_plan(spec, use_estimates=False).order
        )
        assert plan_regret(optimizer, spec) > 1.0
