"""Unit tests for the in-memory column table."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import CatalogError, DimensionMismatchError, InvalidParameterError
from repro.engine.table import ColumnStats, Table
from repro.workload.queries import RangeQuery, compile_queries


@pytest.fixture()
def table() -> Table:
    return Table(
        "people",
        {
            "age": [20, 30, 40, 50, 60],
            "salary": [1000.0, 2000.0, 3000.0, 4000.0, 5000.0],
        },
    )


class TestConstruction:
    def test_basic(self, table: Table) -> None:
        assert table.row_count == 5
        assert table.column_names == ("age", "salary")
        assert len(table) == 5
        assert "age" in table

    def test_from_array_default_names(self) -> None:
        t = Table.from_array("t", np.arange(12).reshape(6, 2))
        assert t.column_names == ("x0", "x1")
        assert t.row_count == 6

    def test_from_array_custom_names(self) -> None:
        t = Table.from_array("t", np.ones((3, 2)), ["a", "b"])
        assert t.column_names == ("a", "b")

    def test_from_array_name_mismatch_raises(self) -> None:
        with pytest.raises(InvalidParameterError):
            Table.from_array("t", np.ones((3, 2)), ["only_one"])

    def test_unequal_columns_raise(self) -> None:
        with pytest.raises(InvalidParameterError):
            Table("t", {"a": [1, 2], "b": [1, 2, 3]})

    def test_empty_columns_raise(self) -> None:
        with pytest.raises(InvalidParameterError):
            Table("t", {})

    def test_unknown_column_raises(self, table: Table) -> None:
        with pytest.raises(CatalogError):
            table.column("height")


class TestAccessors:
    def test_columns_matrix(self, table: Table) -> None:
        matrix = table.columns(["salary", "age"])
        assert matrix.shape == (5, 2)
        assert matrix[0, 0] == 1000.0
        assert matrix[0, 1] == 20.0

    def test_as_matrix(self, table: Table) -> None:
        assert table.as_matrix().shape == (5, 2)

    def test_stats(self, table: Table) -> None:
        stats = table.stats("age")
        assert isinstance(stats, ColumnStats)
        assert stats.count == 5
        assert stats.minimum == 20.0
        assert stats.maximum == 60.0
        assert stats.mean == pytest.approx(40.0)
        assert stats.distinct == 5
        assert stats.width == 40.0

    def test_stats_empty_column(self) -> None:
        stats = ColumnStats("x", np.array([]))
        assert stats.count == 0
        assert stats.width == 0.0

    def test_domain(self, table: Table) -> None:
        domain = table.domain()
        assert domain["age"] == (20.0, 60.0)
        assert domain["salary"] == (1000.0, 5000.0)

    def test_iter_rows(self, table: Table) -> None:
        rows = list(table.iter_rows(["age"]))
        assert rows == [(20.0,), (30.0,), (40.0,), (50.0,), (60.0,)]


class TestQueries:
    def test_true_count_and_selectivity(self, table: Table) -> None:
        query = RangeQuery({"age": (25, 45)})
        assert table.true_count(query) == 2
        assert table.true_selectivity(query) == pytest.approx(0.4)

    def test_conjunctive_query(self, table: Table) -> None:
        query = RangeQuery({"age": (25, 55), "salary": (2500, 10_000)})
        assert table.true_count(query) == 2  # ages 40 and 50

    def test_boundaries_inclusive(self, table: Table) -> None:
        query = RangeQuery({"age": (20, 20)})
        assert table.true_count(query) == 1

    def test_empty_result(self, table: Table) -> None:
        assert table.true_count(RangeQuery({"age": (100, 200)})) == 0
        assert table.true_selectivity(RangeQuery({"age": (100, 200)})) == 0.0

    def test_select_returns_matching_rows(self, table: Table) -> None:
        selected = table.select(RangeQuery({"age": (25, 45)}))
        assert selected.row_count == 2
        assert set(selected.column("age")) == {30.0, 40.0}

    def test_selection_mask_shape(self, table: Table) -> None:
        mask = table.selection_mask(RangeQuery({"age": (0, 100)}))
        assert mask.shape == (5,)
        assert mask.all()


class TestMutation:
    def test_append_rows(self, table: Table) -> None:
        added = table.append_rows({"age": [70], "salary": [6000.0]})
        assert added == 1
        assert table.row_count == 6
        assert table.column("age")[-1] == 70.0

    def test_append_matrix(self, table: Table) -> None:
        table.append_matrix(np.array([[80.0, 7000.0], [90.0, 8000.0]]))
        assert table.row_count == 7

    def test_append_missing_column_raises(self, table: Table) -> None:
        with pytest.raises(DimensionMismatchError):
            table.append_rows({"age": [70]})

    def test_append_length_mismatch_raises(self, table: Table) -> None:
        with pytest.raises(DimensionMismatchError):
            table.append_rows({"age": [70, 80], "salary": [1.0]})

    def test_append_matrix_shape_mismatch_raises(self, table: Table) -> None:
        with pytest.raises(DimensionMismatchError):
            table.append_matrix(np.ones((2, 3)))


class TestSampling:
    def test_sample_size(self, table: Table) -> None:
        sample = table.sample(3, np.random.default_rng(0))
        assert sample.row_count == 3
        assert sample.column_names == table.column_names

    def test_sample_larger_than_table_returns_all(self, table: Table) -> None:
        assert table.sample(100).row_count == table.row_count

    def test_sample_values_come_from_table(self, table: Table) -> None:
        sample = table.sample(4, np.random.default_rng(1))
        assert set(sample.column("age")).issubset(set(table.column("age")))


class TestBatchGroundTruth:
    def test_true_counts_match_scalar(self, table: Table) -> None:
        queries = [
            RangeQuery({"age": (25, 45)}),
            RangeQuery({"age": (0, 100), "salary": (2500.0, 4500.0)}),
            RangeQuery({"salary": (10_000.0, 20_000.0)}),
        ]
        counts = table.true_counts(queries)
        np.testing.assert_array_equal(counts, [table.true_count(q) for q in queries])
        selectivities = table.true_selectivities(queries)
        np.testing.assert_allclose(
            selectivities, [table.true_selectivity(q) for q in queries]
        )

    def test_true_counts_accepts_compiled_plan(self, table: Table) -> None:
        queries = [RangeQuery({"age": (25, 45)})]
        plan = compile_queries(queries, ["age"])
        np.testing.assert_array_equal(table.true_counts(plan), table.true_counts(queries))

    def test_true_counts_unknown_plan_column_raises(self, table: Table) -> None:
        plan = compile_queries([RangeQuery({"height": (0, 1)})], ["height"])
        with pytest.raises(CatalogError):
            table.true_counts(plan)

    def test_true_counts_empty_workload(self, table: Table) -> None:
        assert table.true_counts([]).shape == (0,)

    def test_true_selectivities_empty_table(self) -> None:
        empty = Table("empty", {"x": []})
        values = empty.true_selectivities([RangeQuery({"x": (0, 1)})])
        np.testing.assert_array_equal(values, [0.0])
