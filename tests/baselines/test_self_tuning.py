"""Unit tests for the self-tuning (feedback-refined) grid histogram."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.stholes import SelfTuningHistogram
from repro.core.errors import InvalidParameterError, NotFittedError
from repro.data.generators import gaussian_mixture_table, uniform_table
from repro.engine.table import Table
from repro.workload.generators import SkewedWorkload
from repro.workload.queries import RangeQuery


@pytest.fixture(scope="module")
def table() -> Table:
    return gaussian_mixture_table(6000, dimensions=2, components=3, separation=4.0, seed=31)


class TestConstruction:
    def test_invalid_parameters(self) -> None:
        with pytest.raises(InvalidParameterError):
            SelfTuningHistogram(cells_per_dim=0)
        with pytest.raises(InvalidParameterError):
            SelfTuningHistogram(learning_rate=0.0)
        with pytest.raises(InvalidParameterError):
            SelfTuningHistogram(learning_rate=1.5)
        with pytest.raises(InvalidParameterError):
            SelfTuningHistogram(seed_sample=-1)

    def test_unfitted_raises(self) -> None:
        with pytest.raises(NotFittedError):
            SelfTuningHistogram().estimate(RangeQuery({"x0": (0, 1)}))
        with pytest.raises(NotFittedError):
            SelfTuningHistogram().feedback(RangeQuery({"x0": (0, 1)}), 0.5)


class TestBehaviour:
    def test_unseeded_start_is_uniform(self, table: Table) -> None:
        estimator = SelfTuningHistogram(cells_per_dim=8, seed_sample=0).fit(table)
        cells = estimator.cell_frequencies()
        np.testing.assert_allclose(cells, cells.flat[0])
        assert cells.sum() == pytest.approx(1.0)

    def test_seeded_start_reflects_data(self, table: Table) -> None:
        estimator = SelfTuningHistogram(cells_per_dim=8, seed_sample=2000).fit(table)
        cells = estimator.cell_frequencies()
        assert cells.sum() == pytest.approx(1.0)
        assert cells.max() > 2.0 / cells.size  # clearly non-uniform

    def test_frequencies_stay_normalised_after_feedback(self, table: Table) -> None:
        estimator = SelfTuningHistogram(cells_per_dim=8).fit(table)
        workload = SkewedWorkload(table, volume_fraction=0.2, seed=1).generate(30)
        for query in workload:
            estimator.feedback(query, table.true_selectivity(query))
        assert estimator.cell_frequencies().sum() == pytest.approx(1.0)
        assert np.all(estimator.cell_frequencies() >= 0)

    def test_feedback_moves_estimate_towards_truth(self, table: Table) -> None:
        estimator = SelfTuningHistogram(cells_per_dim=8, learning_rate=1.0).fit(table)
        query = RangeQuery({"x0": (0.0, 2.0), "x1": (0.0, 2.0)})
        truth = table.true_selectivity(query)
        before = abs(estimator.estimate(query) - truth)
        estimator.feedback(query, truth)
        after = abs(estimator.estimate(query) - truth)
        assert after <= before + 1e-12
        assert estimator.estimate(query) == pytest.approx(truth, abs=0.05)

    def test_repeated_feedback_converges_on_workload(self, table: Table) -> None:
        estimator = SelfTuningHistogram(cells_per_dim=10, learning_rate=0.5).fit(table)
        workload = SkewedWorkload(
            table, volume_fraction=0.15, hot_probability=1.0, seed=2
        ).generate(100)
        truths = np.array([table.true_selectivity(q) for q in workload])
        before = np.mean(np.abs([estimator.estimate(q) for q in workload] - truths))
        for _ in range(3):
            for query, truth in zip(workload, truths):
                estimator.feedback(query, float(truth))
        after = np.mean(np.abs([estimator.estimate(q) for q in workload] - truths))
        assert after < before
        assert estimator.feedback_count == 300

    def test_feedback_on_empty_region(self, table: Table) -> None:
        estimator = SelfTuningHistogram(cells_per_dim=8, seed_sample=1000).fit(table)
        domain = table.domain()
        high = domain["x0"][1]
        query = RangeQuery({"x0": (high - 0.01, high), "x1": (domain["x1"][0], domain["x1"][0] + 0.01)})
        estimator.feedback(query, 0.0)
        assert estimator.estimate(query) == pytest.approx(0.0, abs=0.01)

    def test_invalid_feedback_fraction_raises(self, table: Table) -> None:
        estimator = SelfTuningHistogram(cells_per_dim=4).fit(table)
        with pytest.raises(InvalidParameterError):
            estimator.feedback(RangeQuery({"x0": (0, 1), "x1": (0, 1)}), -0.1)

    def test_memory_independent_of_feedback(self, table: Table) -> None:
        estimator = SelfTuningHistogram(cells_per_dim=8).fit(table)
        before = estimator.memory_bytes()
        query = RangeQuery({"x0": (0.0, 1.0), "x1": (0.0, 1.0)})
        estimator.feedback(query, table.true_selectivity(query))
        assert estimator.memory_bytes() == before

    def test_estimates_valid(self, table: Table) -> None:
        estimator = SelfTuningHistogram(cells_per_dim=8, seed_sample=500).fit(table)
        workload = SkewedWorkload(table, volume_fraction=0.2, seed=3).generate(30)
        for query in workload:
            assert 0.0 <= estimator.estimate(query) <= 1.0

    def test_works_on_uniform_1d(self) -> None:
        table = uniform_table(5000, dimensions=1, seed=7)
        estimator = SelfTuningHistogram(cells_per_dim=16, seed_sample=1000).fit(table)
        query = RangeQuery({"x0": (0.25, 0.75)})
        assert estimator.estimate(query) == pytest.approx(0.5, abs=0.1)
