"""Unit tests for the 1-D histogram synopses and the AVI combiner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.histogram import EquiDepthHistogram, EquiWidthHistogram, Histogram1D
from repro.core.errors import InvalidParameterError, NotFittedError
from repro.data.generators import uniform_table, zipf_table
from repro.engine.table import Table
from repro.workload.queries import RangeQuery


class TestHistogram1D:
    def test_invalid_construction(self) -> None:
        with pytest.raises(InvalidParameterError):
            Histogram1D(np.array([0.0, 1.0]), np.array([1.0, 2.0]))
        with pytest.raises(InvalidParameterError):
            Histogram1D(np.array([1.0, 0.0, 2.0]), np.array([1.0, 2.0]))
        with pytest.raises(InvalidParameterError):
            Histogram1D(np.array([0.0, 1.0, 2.0]), np.array([1.0, -2.0]))

    def test_full_range_selectivity_is_one(self) -> None:
        histogram = Histogram1D(np.array([0.0, 1.0, 2.0]), np.array([10.0, 30.0]))
        assert histogram.selectivity(0.0, 2.0) == pytest.approx(1.0)

    def test_uniform_spread_within_bucket(self) -> None:
        histogram = Histogram1D(np.array([0.0, 1.0]), np.array([100.0]))
        assert histogram.selectivity(0.0, 0.25) == pytest.approx(0.25)

    def test_partial_overlap_of_two_buckets(self) -> None:
        histogram = Histogram1D(np.array([0.0, 1.0, 2.0]), np.array([10.0, 30.0]))
        # Half of the first bucket and half of the second.
        expected = (0.5 * 10 + 0.5 * 30) / 40
        assert histogram.selectivity(0.5, 1.5) == pytest.approx(expected)

    def test_empty_histogram_returns_zero(self) -> None:
        histogram = Histogram1D(np.array([0.0, 1.0]), np.array([0.0]))
        assert histogram.selectivity(0.0, 1.0) == 0.0

    def test_degenerate_point_bucket(self) -> None:
        histogram = Histogram1D(np.array([0.0, 1.0, 1.0, 2.0]), np.array([10.0, 50.0, 40.0]))
        # The point bucket at 1.0 is fully counted when the query contains it.
        assert histogram.selectivity(0.99, 1.01) > 0.5 * 50 / 100

    def test_inverted_range_returns_zero(self) -> None:
        histogram = Histogram1D(np.array([0.0, 1.0]), np.array([5.0]))
        assert histogram.selectivity(0.8, 0.2) == 0.0

    def test_density_integrates_to_one(self) -> None:
        histogram = Histogram1D(np.linspace(0, 1, 11), np.ones(10) * 7)
        grid = np.linspace(0, 1, 1001)
        density = histogram.density(grid)
        assert np.trapezoid(density, grid) == pytest.approx(1.0, rel=1e-2)

    def test_density_outside_domain_is_zero(self) -> None:
        histogram = Histogram1D(np.linspace(0, 1, 5), np.ones(4))
        assert histogram.density(np.array([-0.5, 1.5])).tolist() == [0.0, 0.0]

    def test_memory_floats(self) -> None:
        histogram = Histogram1D(np.linspace(0, 1, 11), np.ones(10))
        assert histogram.memory_floats() == 21


@pytest.mark.parametrize("estimator_type", [EquiWidthHistogram, EquiDepthHistogram])
class TestHistogramEstimators:
    def test_invalid_buckets(self, estimator_type) -> None:
        with pytest.raises(InvalidParameterError):
            estimator_type(buckets=0)

    def test_unfitted_raises(self, estimator_type) -> None:
        with pytest.raises(NotFittedError):
            estimator_type().estimate(RangeQuery({"x0": (0, 1)}))

    def test_uniform_data_accuracy(self, estimator_type) -> None:
        table = uniform_table(20_000, dimensions=1, seed=1)
        estimator = estimator_type(buckets=64).fit(table)
        estimate = estimator.estimate(RangeQuery({"x0": (0.1, 0.6)}))
        assert estimate == pytest.approx(0.5, abs=0.03)

    def test_full_domain_close_to_one(self, estimator_type, skewed_table: Table) -> None:
        estimator = estimator_type(buckets=32).fit(skewed_table)
        low, high = skewed_table.domain()["x0"]
        assert estimator.estimate(RangeQuery({"x0": (low, high)})) == pytest.approx(1.0, abs=0.01)

    def test_avi_combination_multiplies(self, estimator_type) -> None:
        table = uniform_table(30_000, dimensions=2, seed=2)
        estimator = estimator_type(buckets=32).fit(table)
        query = RangeQuery({"x0": (0.0, 0.5), "x1": (0.0, 0.5)})
        assert estimator.estimate(query) == pytest.approx(0.25, abs=0.03)

    def test_memory_scales_with_buckets(self, estimator_type, skewed_table: Table) -> None:
        small = estimator_type(buckets=8).fit(skewed_table)
        large = estimator_type(buckets=128).fit(skewed_table)
        assert large.memory_bytes() > small.memory_bytes()

    def test_histogram_accessor(self, estimator_type, skewed_table: Table) -> None:
        estimator = estimator_type(buckets=16).fit(skewed_table)
        histogram = estimator.histogram("x0")
        assert histogram.bucket_count == 16
        assert histogram.total == pytest.approx(skewed_table.row_count)

    def test_estimates_valid(self, estimator_type, mixture_table_2d, workload_2d) -> None:
        estimator = estimator_type(buckets=32).fit(mixture_table_2d)
        for query in workload_2d:
            assert 0.0 <= estimator.estimate(query) <= 1.0


class TestEquiDepthSpecifics:
    def test_buckets_have_roughly_equal_depth(self, skewed_table: Table) -> None:
        estimator = EquiDepthHistogram(buckets=20).fit(skewed_table)
        counts = estimator.histogram("x0").counts
        expected = skewed_table.row_count / 20
        # Heavy duplicates can distort individual buckets, but the median
        # bucket should be near the target depth.
        assert np.median(counts) == pytest.approx(expected, rel=0.5)

    def test_no_rows_lost(self, skewed_table: Table) -> None:
        estimator = EquiDepthHistogram(buckets=16).fit(skewed_table)
        assert estimator.histogram("x0").counts.sum() == pytest.approx(skewed_table.row_count)

    def test_equidepth_beats_equiwidth_on_skew(self) -> None:
        table = zipf_table(30_000, dimensions=1, theta=1.5, distinct=5000, seed=9)
        narrow = RangeQuery({"x0": (0.0, 5.0)})  # the dense head of the Zipf domain
        truth = table.true_selectivity(narrow)
        equidepth = EquiDepthHistogram(buckets=32).fit(table).estimate(narrow)
        equiwidth = EquiWidthHistogram(buckets=32).fit(table).estimate(narrow)
        assert abs(equidepth - truth) <= abs(equiwidth - truth) + 0.02

    def test_constant_column(self) -> None:
        table = Table("constant", {"x0": np.full(1000, 7.0)})
        estimator = EquiDepthHistogram(buckets=8).fit(table)
        assert estimator.estimate(RangeQuery({"x0": (6.9, 7.1)})) == pytest.approx(1.0, abs=0.01)
        assert estimator.estimate(RangeQuery({"x0": (8.0, 9.0)})) == pytest.approx(0.0, abs=0.01)
