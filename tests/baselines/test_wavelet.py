"""Unit tests for the Haar wavelet transform and the wavelet synopsis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.wavelet import (
    WaveletHistogram,
    haar_transform,
    inverse_haar_transform,
    top_k_coefficients,
)
from repro.core.errors import InvalidParameterError, NotFittedError
from repro.data.generators import uniform_table, zipf_table
from repro.engine.table import Table
from repro.workload.queries import RangeQuery


class TestHaarTransform:
    def test_round_trip(self) -> None:
        rng = np.random.default_rng(0)
        for size in (2, 8, 64, 256):
            values = rng.uniform(size=size)
            np.testing.assert_allclose(
                inverse_haar_transform(haar_transform(values)), values, atol=1e-10
            )

    def test_energy_preservation(self) -> None:
        rng = np.random.default_rng(1)
        values = rng.uniform(size=128)
        transformed = haar_transform(values)
        assert np.sum(values**2) == pytest.approx(np.sum(transformed**2))

    def test_constant_signal_single_coefficient(self) -> None:
        values = np.full(16, 3.0)
        transformed = haar_transform(values)
        assert transformed[0] == pytest.approx(3.0 * 4.0)  # mean * sqrt(n)
        np.testing.assert_allclose(transformed[1:], 0.0, atol=1e-12)

    def test_non_power_of_two_raises(self) -> None:
        with pytest.raises(InvalidParameterError):
            haar_transform(np.ones(6))
        with pytest.raises(InvalidParameterError):
            inverse_haar_transform(np.ones(6))

    def test_empty_input(self) -> None:
        assert haar_transform(np.array([])).size == 0

    def test_top_k_keeps_largest(self) -> None:
        coefficients = np.array([5.0, -3.0, 0.5, 0.1])
        kept = top_k_coefficients(coefficients, 2)
        np.testing.assert_allclose(kept, [5.0, -3.0, 0.0, 0.0])

    def test_top_k_zero(self) -> None:
        np.testing.assert_allclose(top_k_coefficients(np.ones(4), 0), 0.0)

    def test_top_k_larger_than_input(self) -> None:
        coefficients = np.array([1.0, 2.0])
        np.testing.assert_allclose(top_k_coefficients(coefficients, 10), coefficients)

    def test_top_k_negative_raises(self) -> None:
        with pytest.raises(InvalidParameterError):
            top_k_coefficients(np.ones(4), -1)


class TestWaveletHistogram:
    def test_invalid_parameters(self) -> None:
        with pytest.raises(InvalidParameterError):
            WaveletHistogram(resolution=1)
        with pytest.raises(InvalidParameterError):
            WaveletHistogram(coefficients=0)

    def test_resolution_rounded_to_power_of_two(self) -> None:
        assert WaveletHistogram(resolution=100).resolution == 128

    def test_unfitted_raises(self) -> None:
        with pytest.raises(NotFittedError):
            WaveletHistogram().estimate(RangeQuery({"x0": (0, 1)}))

    def test_uniform_accuracy(self) -> None:
        table = uniform_table(30_000, dimensions=1, seed=2)
        estimator = WaveletHistogram(resolution=256, coefficients=32).fit(table)
        assert estimator.estimate(RangeQuery({"x0": (0.2, 0.7)})) == pytest.approx(0.5, abs=0.03)

    def test_full_domain_close_to_one(self, skewed_table: Table) -> None:
        estimator = WaveletHistogram(resolution=256, coefficients=48).fit(skewed_table)
        low, high = skewed_table.domain()["x0"]
        assert estimator.estimate(RangeQuery({"x0": (low, high)})) == pytest.approx(1.0, abs=0.02)

    def test_more_coefficients_do_not_hurt(self) -> None:
        table = zipf_table(30_000, dimensions=1, theta=1.0, seed=3)
        queries = [RangeQuery({"x0": (i * 10.0, i * 10.0 + 30.0)}) for i in range(10)]
        truths = np.array([table.true_selectivity(q) for q in queries])

        def error(coefficients: int) -> float:
            estimator = WaveletHistogram(resolution=256, coefficients=coefficients).fit(table)
            estimates = np.array([estimator.estimate(q) for q in queries])
            return float(np.mean(np.abs(estimates - truths)))

        assert error(128) <= error(8) + 1e-6

    def test_reconstructed_histogram_total_preserved(self, skewed_table: Table) -> None:
        estimator = WaveletHistogram(resolution=128, coefficients=16).fit(skewed_table)
        assert estimator.histogram("x0").total == pytest.approx(skewed_table.row_count, rel=1e-6)

    def test_memory_depends_on_coefficients_not_resolution(self, skewed_table: Table) -> None:
        small = WaveletHistogram(resolution=1024, coefficients=8).fit(skewed_table)
        large = WaveletHistogram(resolution=1024, coefficients=64).fit(skewed_table)
        assert large.memory_bytes() > small.memory_bytes()

    def test_avi_combination(self) -> None:
        table = uniform_table(30_000, dimensions=2, seed=4)
        estimator = WaveletHistogram(resolution=128, coefficients=32).fit(table)
        query = RangeQuery({"x0": (0.0, 0.5), "x1": (0.0, 0.5)})
        assert estimator.estimate(query) == pytest.approx(0.25, abs=0.03)

    def test_estimates_valid(self, mixture_table_2d: Table, workload_2d) -> None:
        estimator = WaveletHistogram(resolution=128, coefficients=16).fit(mixture_table_2d)
        for query in workload_2d:
            assert 0.0 <= estimator.estimate(query) <= 1.0
