"""Unit tests for the multi-dimensional grid histogram and the AVI parametric estimator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.independence import IndependenceEstimator
from repro.baselines.multidim import GridHistogram
from repro.core.errors import BudgetError, InvalidParameterError, NotFittedError
from repro.data.generators import correlated_table, uniform_table
from repro.engine.table import Table
from repro.workload.queries import RangeQuery


class TestGridHistogram:
    def test_invalid_parameters(self) -> None:
        with pytest.raises(InvalidParameterError):
            GridHistogram(cells_per_dim=0)
        with pytest.raises(BudgetError):
            GridHistogram(budget_bytes=4)

    def test_unfitted_raises(self) -> None:
        with pytest.raises(NotFittedError):
            GridHistogram().estimate(RangeQuery({"x0": (0, 1)}))

    def test_uniform_2d_accuracy(self) -> None:
        table = uniform_table(30_000, dimensions=2, seed=1)
        estimator = GridHistogram(cells_per_dim=16).fit(table)
        query = RangeQuery({"x0": (0.0, 0.5), "x1": (0.25, 0.75)})
        assert estimator.estimate(query) == pytest.approx(0.25, abs=0.02)

    def test_full_domain_is_one(self, mixture_table_2d: Table) -> None:
        estimator = GridHistogram(cells_per_dim=8).fit(mixture_table_2d)
        domain = mixture_table_2d.domain()
        query = RangeQuery({name: bounds for name, bounds in domain.items()})
        assert estimator.estimate(query) == pytest.approx(1.0, abs=1e-6)

    def test_captures_correlation_better_than_avi(self) -> None:
        table = correlated_table(30_000, dimensions=2, correlation=0.9, seed=2)
        # A box along the anti-diagonal is nearly empty for correlated data.
        query = RangeQuery({"x0": (-3.0, -1.0), "x1": (1.0, 3.0)})
        truth = table.true_selectivity(query)
        grid_estimate = GridHistogram(cells_per_dim=16).fit(table).estimate(query)
        avi_estimate = IndependenceEstimator(model="normal").fit(table).estimate(query)
        assert abs(grid_estimate - truth) < abs(avi_estimate - truth)

    def test_budget_determines_resolution(self) -> None:
        table = uniform_table(2000, dimensions=2, seed=3)
        coarse = GridHistogram(budget_bytes=512).fit(table)
        fine = GridHistogram(budget_bytes=8192).fit(table)
        assert fine.resolution > coarse.resolution
        assert coarse.memory_bytes() <= 512 + 4 * 8  # cells plus boundary floats

    def test_minimal_budget_degrades_to_single_cell(self) -> None:
        table = uniform_table(100, dimensions=4, seed=4)
        estimator = GridHistogram(budget_bytes=8).fit(table)
        assert estimator.resolution == 1
        assert estimator.cell_count == 1
        # A single cell can only answer with the uniform-spread fraction.
        assert 0.0 <= estimator.estimate(RangeQuery({"x0": (0.0, 0.5)})) <= 1.0

    def test_cell_frequencies_shape_and_total(self, mixture_table_2d: Table) -> None:
        estimator = GridHistogram(cells_per_dim=8).fit(mixture_table_2d)
        cells = estimator.cell_frequencies()
        assert cells.shape == (8, 8)
        assert cells.sum() == pytest.approx(mixture_table_2d.row_count)
        assert estimator.cell_count == 64

    def test_empty_table(self) -> None:
        table = Table("empty", {"x0": np.array([]), "x1": np.array([])})
        estimator = GridHistogram(cells_per_dim=4).fit(table)
        assert estimator.estimate(RangeQuery({"x0": (0, 1)})) == 0.0

    def test_estimates_valid(self, mixture_table_2d: Table, workload_2d) -> None:
        estimator = GridHistogram(cells_per_dim=12).fit(mixture_table_2d)
        for query in workload_2d:
            assert 0.0 <= estimator.estimate(query) <= 1.0


class TestIndependenceEstimator:
    def test_invalid_model_raises(self) -> None:
        with pytest.raises(InvalidParameterError):
            IndependenceEstimator(model="weird")

    def test_uniform_model_on_uniform_data(self) -> None:
        table = uniform_table(20_000, dimensions=2, seed=5)
        estimator = IndependenceEstimator(model="uniform").fit(table)
        query = RangeQuery({"x0": (0.0, 0.5), "x1": (0.0, 0.5)})
        assert estimator.estimate(query) == pytest.approx(0.25, abs=0.02)

    def test_normal_model_on_gaussian_data(self) -> None:
        rng = np.random.default_rng(6)
        table = Table("gauss", {"x0": rng.standard_normal(20_000)})
        estimator = IndependenceEstimator(model="normal").fit(table)
        estimate = estimator.estimate(RangeQuery({"x0": (-1.0, 1.0)}))
        assert estimate == pytest.approx(0.683, abs=0.02)

    def test_tiny_memory_footprint(self, mixture_table_2d: Table) -> None:
        estimator = IndependenceEstimator().fit(mixture_table_2d)
        assert estimator.memory_bytes() == 2 * 4 * 8

    def test_out_of_domain_query_is_zero(self, small_table: Table) -> None:
        estimator = IndependenceEstimator().fit(small_table)
        assert estimator.estimate(RangeQuery({"x0": (10.0, 20.0)})) == 0.0

    def test_constant_column(self) -> None:
        table = Table("constant", {"x0": np.full(100, 5.0)})
        estimator = IndependenceEstimator().fit(table)
        assert estimator.estimate(RangeQuery({"x0": (4.0, 6.0)})) == pytest.approx(1.0)
        assert estimator.estimate(RangeQuery({"x0": (6.0, 7.0)})) == 0.0

    def test_estimates_valid(self, mixture_table_2d: Table, workload_2d) -> None:
        for model in ("uniform", "normal"):
            estimator = IndependenceEstimator(model=model).fit(mixture_table_2d)
            for query in workload_2d:
                assert 0.0 <= estimator.estimate(query) <= 1.0
