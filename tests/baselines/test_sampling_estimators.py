"""Unit tests for the sampling-based estimators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.sampling import ReservoirSamplingEstimator, SamplingEstimator
from repro.core.errors import InvalidParameterError, NotFittedError
from repro.data.generators import uniform_table
from repro.engine.table import Table
from repro.workload.queries import RangeQuery


class TestSamplingEstimator:
    def test_invalid_sample_size(self) -> None:
        with pytest.raises(InvalidParameterError):
            SamplingEstimator(sample_size=0)

    def test_unfitted_raises(self) -> None:
        with pytest.raises(NotFittedError):
            SamplingEstimator().estimate(RangeQuery({"x0": (0, 1)}))

    def test_sample_size_respected(self, mixture_table_1d: Table) -> None:
        estimator = SamplingEstimator(sample_size=100).fit(mixture_table_1d)
        assert estimator.sample_rows.shape == (100, 1)

    def test_small_table_fully_retained(self) -> None:
        table = uniform_table(50, dimensions=2, seed=1)
        estimator = SamplingEstimator(sample_size=1000).fit(table)
        assert estimator.sample_rows.shape == (50, 2)

    def test_uniform_accuracy(self) -> None:
        table = uniform_table(50_000, dimensions=1, seed=2)
        estimator = SamplingEstimator(sample_size=2000).fit(table)
        estimate = estimator.estimate(RangeQuery({"x0": (0.1, 0.4)}))
        assert estimate == pytest.approx(0.3, abs=0.03)

    def test_estimate_granularity_limited_by_sample(self, mixture_table_1d: Table) -> None:
        estimator = SamplingEstimator(sample_size=100).fit(mixture_table_1d)
        query = RangeQuery({"x0": mixture_table_1d.domain()["x0"]})
        value = estimator.estimate(query)
        # Any estimate is a multiple of 1/sample_size.
        assert (value * 100) == pytest.approx(round(value * 100), abs=1e-9)

    def test_memory_is_sample_bytes(self, mixture_table_2d: Table) -> None:
        estimator = SamplingEstimator(sample_size=250).fit(mixture_table_2d)
        assert estimator.memory_bytes() == 250 * 2 * 8

    def test_seed_reproducibility(self, mixture_table_1d: Table) -> None:
        q = RangeQuery({"x0": (0.0, 2.0)})
        a = SamplingEstimator(sample_size=200, seed=3).fit(mixture_table_1d).estimate(q)
        b = SamplingEstimator(sample_size=200, seed=3).fit(mixture_table_1d).estimate(q)
        assert a == b


class TestReservoirSamplingEstimator:
    def test_invalid_sample_size(self) -> None:
        with pytest.raises(InvalidParameterError):
            ReservoirSamplingEstimator(sample_size=0)

    def test_start_requires_columns(self) -> None:
        with pytest.raises(InvalidParameterError):
            ReservoirSamplingEstimator().start([])

    def test_fit_then_estimate(self, mixture_table_1d: Table) -> None:
        estimator = ReservoirSamplingEstimator(sample_size=200).fit(mixture_table_1d)
        low, high = mixture_table_1d.domain()["x0"]
        assert estimator.estimate(RangeQuery({"x0": (low, high)})) == pytest.approx(1.0, abs=0.01)

    def test_streaming_insert_tracks_row_count(self) -> None:
        estimator = ReservoirSamplingEstimator(sample_size=64).start(["x0"])
        rng = np.random.default_rng(4)
        estimator.insert(rng.uniform(size=(500, 1)))
        estimator.insert(rng.uniform(size=(250, 1)))
        assert estimator.row_count == 750

    def test_uniform_stream_accuracy(self) -> None:
        estimator = ReservoirSamplingEstimator(sample_size=1000, seed=5).start(["x0"])
        rng = np.random.default_rng(5)
        estimator.insert(rng.uniform(size=(20_000, 1)))
        estimate = estimator.estimate(RangeQuery({"x0": (0.0, 0.25)}))
        assert estimate == pytest.approx(0.25, abs=0.05)

    def test_decayed_reservoir_tracks_recent_distribution(self) -> None:
        decayed = ReservoirSamplingEstimator(sample_size=256, decay=True, seed=6).start(["x0"])
        uniform = ReservoirSamplingEstimator(sample_size=256, decay=False, seed=6).start(["x0"])
        rng = np.random.default_rng(6)
        old = rng.uniform(0.0, 1.0, size=(5000, 1))
        new = rng.uniform(10.0, 11.0, size=(5000, 1))
        for estimator in (decayed, uniform):
            estimator.insert(old)
            estimator.insert(new)
        recent_query = RangeQuery({"x0": (10.0, 11.0)})
        assert decayed.estimate(recent_query) > uniform.estimate(recent_query)
        assert decayed.estimate(recent_query) > 0.9

    def test_memory_constant_regardless_of_stream_length(self) -> None:
        estimator = ReservoirSamplingEstimator(sample_size=128).start(["x0", "x1"])
        rng = np.random.default_rng(7)
        estimator.insert(rng.uniform(size=(100, 2)))
        before = estimator.memory_bytes()
        estimator.insert(rng.uniform(size=(10_000, 2)))
        assert estimator.memory_bytes() == before == 128 * 2 * 8
