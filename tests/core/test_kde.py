"""Unit tests for the fixed-bandwidth KDE selectivity estimator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import (
    DimensionMismatchError,
    InvalidParameterError,
    NotFittedError,
)
from repro.core.kde import KDESelectivityEstimator
from repro.data.generators import gaussian_mixture_table, uniform_table
from repro.engine.table import Table
from repro.workload.queries import RangeQuery


class TestLifecycle:
    def test_estimate_before_fit_raises(self) -> None:
        with pytest.raises(NotFittedError):
            KDESelectivityEstimator().estimate(RangeQuery({"x0": (0, 1)}))

    def test_memory_before_fit_raises(self) -> None:
        with pytest.raises(NotFittedError):
            KDESelectivityEstimator().memory_bytes()

    def test_fit_returns_self(self, small_table: Table) -> None:
        estimator = KDESelectivityEstimator(sample_size=100)
        assert estimator.fit(small_table) is estimator
        assert estimator.is_fitted
        assert estimator.columns == ("x0",)
        assert estimator.row_count == small_table.row_count

    def test_fit_on_column_subset(self, mixture_table_2d: Table) -> None:
        estimator = KDESelectivityEstimator(sample_size=100).fit(mixture_table_2d, ["x1"])
        assert estimator.columns == ("x1",)
        value = estimator.estimate(RangeQuery({"x1": (-100, 100)}))
        assert value == pytest.approx(1.0, abs=0.05)

    def test_unknown_column_raises(self, small_table: Table) -> None:
        with pytest.raises(DimensionMismatchError):
            KDESelectivityEstimator().fit(small_table, ["nope"])

    def test_query_on_uncovered_attribute_raises(self, small_table: Table) -> None:
        estimator = KDESelectivityEstimator(sample_size=50).fit(small_table)
        with pytest.raises(DimensionMismatchError):
            estimator.estimate(RangeQuery({"other": (0, 1)}))

    def test_invalid_parameters(self) -> None:
        with pytest.raises(InvalidParameterError):
            KDESelectivityEstimator(sample_size=0)
        with pytest.raises(InvalidParameterError):
            KDESelectivityEstimator(bandwidths=[-1.0]).fit(
                uniform_table(100, dimensions=1, seed=0)
            )
        with pytest.raises(InvalidParameterError):
            KDESelectivityEstimator(bandwidths=[0.1, 0.2]).fit(
                uniform_table(100, dimensions=1, seed=0)
            )


class TestEstimates:
    def test_full_domain_query_close_to_one(self, mixture_table_1d: Table) -> None:
        estimator = KDESelectivityEstimator(sample_size=500).fit(mixture_table_1d)
        domain = mixture_table_1d.domain()["x0"]
        value = estimator.estimate(RangeQuery({"x0": domain}))
        assert value == pytest.approx(1.0, abs=0.05)

    def test_empty_region_close_to_zero(self, mixture_table_1d: Table) -> None:
        estimator = KDESelectivityEstimator(sample_size=500).fit(mixture_table_1d)
        high = mixture_table_1d.domain()["x0"][1]
        value = estimator.estimate(RangeQuery({"x0": (high + 100, high + 200)}))
        assert value == pytest.approx(0.0, abs=1e-6)

    def test_estimates_in_unit_interval(self, mixture_table_2d: Table, workload_2d) -> None:
        estimator = KDESelectivityEstimator(sample_size=300).fit(mixture_table_2d)
        for query in workload_2d:
            value = estimator.estimate(query)
            assert 0.0 <= value <= 1.0

    def test_monotone_in_query_width(self, mixture_table_1d: Table) -> None:
        estimator = KDESelectivityEstimator(sample_size=500).fit(mixture_table_1d)
        low, high = mixture_table_1d.domain()["x0"]
        center = (low + high) / 2.0
        widths = np.linspace(0.1, (high - low) / 2, 8)
        estimates = [
            estimator.estimate(RangeQuery({"x0": (center - w, center + w)})) for w in widths
        ]
        assert all(b >= a - 1e-9 for a, b in zip(estimates, estimates[1:]))

    def test_uniform_data_accuracy(self) -> None:
        table = uniform_table(20_000, dimensions=1, seed=3)
        estimator = KDESelectivityEstimator(sample_size=1000).fit(table)
        value = estimator.estimate(RangeQuery({"x0": (0.2, 0.7)}))
        assert value == pytest.approx(0.5, abs=0.05)

    def test_additivity_over_disjoint_ranges(self, mixture_table_1d: Table) -> None:
        estimator = KDESelectivityEstimator(sample_size=500).fit(mixture_table_1d)
        low, high = mixture_table_1d.domain()["x0"]
        mid = (low + high) / 2.0
        left = estimator.estimate(RangeQuery({"x0": (low, mid)}))
        right = estimator.estimate(RangeQuery({"x0": (mid, high)}))
        both = estimator.estimate(RangeQuery({"x0": (low, high)}))
        assert left + right == pytest.approx(both, abs=0.02)

    def test_estimate_cardinality_scales_with_rows(self, small_table: Table) -> None:
        estimator = KDESelectivityEstimator(sample_size=200).fit(small_table)
        query = RangeQuery({"x0": (0.0, 0.5)})
        cardinality = estimator.estimate_cardinality(query)
        assert cardinality == pytest.approx(estimator.estimate(query) * small_table.row_count)

    def test_estimate_many(self, small_table: Table, workload_1d) -> None:
        estimator = KDESelectivityEstimator(sample_size=200).fit(small_table)
        queries = [RangeQuery({"x0": (0.0, 0.3)}), RangeQuery({"x0": (0.3, 0.9)})]
        values = estimator.estimate_many(queries)
        assert values.shape == (2,)

    def test_open_ended_query(self, small_table: Table) -> None:
        estimator = KDESelectivityEstimator(sample_size=200).fit(small_table)
        value = estimator.estimate(RangeQuery({"x0": (0.5, float("inf"))}))
        assert value == pytest.approx(0.5, abs=0.1)


class TestConfiguration:
    def test_sample_size_respected(self, mixture_table_1d: Table) -> None:
        estimator = KDESelectivityEstimator(sample_size=128).fit(mixture_table_1d)
        assert estimator.sample_points.shape[0] == 128

    def test_none_sample_keeps_everything(self) -> None:
        table = uniform_table(500, dimensions=1, seed=1)
        estimator = KDESelectivityEstimator(sample_size=None).fit(table)
        assert estimator.sample_points.shape[0] == 500

    def test_explicit_bandwidths_used(self, small_table: Table) -> None:
        estimator = KDESelectivityEstimator(sample_size=100, bandwidths=[0.05]).fit(small_table)
        assert estimator.bandwidths[0] == pytest.approx(0.05)

    def test_set_bandwidths(self, small_table: Table) -> None:
        estimator = KDESelectivityEstimator(sample_size=100).fit(small_table)
        estimator.set_bandwidths([0.2])
        assert estimator.bandwidths[0] == pytest.approx(0.2)
        with pytest.raises(InvalidParameterError):
            estimator.set_bandwidths([0.2, 0.3])
        with pytest.raises(InvalidParameterError):
            estimator.set_bandwidths([-0.1])

    def test_seed_reproducibility(self, mixture_table_1d: Table) -> None:
        e1 = KDESelectivityEstimator(sample_size=200, seed=7).fit(mixture_table_1d)
        e2 = KDESelectivityEstimator(sample_size=200, seed=7).fit(mixture_table_1d)
        query = RangeQuery({"x0": (0.0, 2.0)})
        assert e1.estimate(query) == pytest.approx(e2.estimate(query))

    def test_different_kernels_give_similar_estimates(self, mixture_table_1d: Table) -> None:
        query = RangeQuery({"x0": (0.0, 4.0)})
        estimates = []
        for kernel in ("gaussian", "epanechnikov", "biweight"):
            estimator = KDESelectivityEstimator(sample_size=400, kernel=kernel).fit(
                mixture_table_1d
            )
            estimates.append(estimator.estimate(query))
        assert max(estimates) - min(estimates) < 0.1

    def test_memory_scales_with_sample_size(self, mixture_table_1d: Table) -> None:
        small = KDESelectivityEstimator(sample_size=100).fit(mixture_table_1d)
        large = KDESelectivityEstimator(sample_size=400).fit(mixture_table_1d)
        assert large.memory_bytes() > small.memory_bytes()

    def test_boundary_correction_improves_edge_queries(self) -> None:
        table = uniform_table(20_000, dimensions=1, seed=5)
        corrected = KDESelectivityEstimator(sample_size=800, boundary_correction=True).fit(table)
        uncorrected = KDESelectivityEstimator(sample_size=800, boundary_correction=False).fit(table)
        edge_query = RangeQuery({"x0": (0.0, 0.1)})
        truth = table.true_selectivity(edge_query)
        assert abs(corrected.estimate(edge_query) - truth) <= abs(
            uncorrected.estimate(edge_query) - truth
        )


class TestDensity:
    def test_density_nonnegative_and_integrates(self, mixture_table_1d: Table) -> None:
        estimator = KDESelectivityEstimator(sample_size=400).fit(mixture_table_1d)
        low, high = mixture_table_1d.domain()["x0"]
        grid = np.linspace(low - 3, high + 3, 800).reshape(-1, 1)
        density = estimator.density(grid)
        assert np.all(density >= 0)
        integral = np.trapezoid(density, dx=float(grid[1, 0] - grid[0, 0]))
        assert integral == pytest.approx(1.0, abs=0.05)

    def test_density_dimension_mismatch_raises(self, mixture_table_2d: Table) -> None:
        estimator = KDESelectivityEstimator(sample_size=100).fit(mixture_table_2d)
        with pytest.raises(InvalidParameterError):
            estimator.density(np.zeros((5, 1)))

    def test_density_peaks_near_modes(self) -> None:
        table = gaussian_mixture_table(8000, dimensions=1, components=2, separation=8.0, seed=9)
        estimator = KDESelectivityEstimator(sample_size=800, bandwidth_rule="lscv").fit(table)
        values = table.column("x0")
        dense_point = np.array([[float(np.median(values[values < np.mean(values)]))]])
        low, high = table.domain()["x0"]
        gap_point = np.array([[(low + high) / 2.0]])
        assert estimator.density(dense_point)[0] > estimator.density(gap_point)[0]


class TestZeroRowFit:
    """Zero-row relations must fit gracefully and estimate 0.0 (no mass)."""

    def _empty_table(self, dimensions: int = 2) -> Table:
        return Table.from_array(
            "empty", np.empty((0, dimensions)), [f"x{i}" for i in range(dimensions)]
        )

    @pytest.mark.parametrize("rule", ["scott", "silverman", "lscv", "mlcv"])
    def test_fit_and_estimate_zero(self, rule: str) -> None:
        estimator = KDESelectivityEstimator(sample_size=32, bandwidth_rule=rule)
        estimator.fit(self._empty_table())
        assert estimator.is_fitted
        assert np.all(np.isfinite(estimator.bandwidths))
        query = RangeQuery({"x0": (0.0, 1.0), "x1": (-1.0, 1.0)})
        assert estimator.estimate(query) == 0.0
        np.testing.assert_array_equal(estimator.estimate_batch([query, query]), 0.0)
        assert estimator.memory_bytes() >= 0

    def test_adaptive_zero_row_fit(self) -> None:
        from repro.core.adaptive import AdaptiveKDEEstimator

        estimator = AdaptiveKDEEstimator(sample_size=32).fit(self._empty_table(1))
        assert estimator.estimate(RangeQuery({"x0": (0.0, 1.0)})) == 0.0

    def test_density_zero_everywhere(self) -> None:
        estimator = KDESelectivityEstimator(sample_size=32).fit(self._empty_table(1))
        np.testing.assert_array_equal(estimator.density(np.zeros((4, 1))), 0.0)
