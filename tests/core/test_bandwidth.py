"""Unit tests for bandwidth selection rules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bandwidth import (
    bandwidth_grid,
    knn_bandwidths,
    local_bandwidth_factors,
    lscv_bandwidth,
    mlcv_bandwidth,
    robust_scale,
    scott_bandwidth,
    select_bandwidth,
    silverman_bandwidth,
)
from repro.core.errors import InvalidParameterError


class TestRobustScale:
    def test_standard_normal(self) -> None:
        rng = np.random.default_rng(0)
        values = rng.standard_normal(20_000)
        assert robust_scale(values) == pytest.approx(1.0, rel=0.05)

    def test_constant_data_positive(self) -> None:
        assert robust_scale(np.full(100, 3.0)) > 0

    def test_empty_data(self) -> None:
        assert robust_scale(np.array([])) == 1.0

    def test_uses_iqr_for_outlier_heavy_data(self) -> None:
        rng = np.random.default_rng(1)
        values = np.concatenate([rng.standard_normal(1000), [1e6, -1e6]])
        # The IQR-based scale should be close to 1, far below the raw std.
        assert robust_scale(values) < 10.0


class TestRuleOfThumb:
    def test_scott_shrinks_with_sample_size(self) -> None:
        rng = np.random.default_rng(2)
        small = rng.standard_normal(100)
        large = rng.standard_normal(10_000)
        assert scott_bandwidth(large) < scott_bandwidth(small)

    def test_scott_scales_with_spread(self) -> None:
        rng = np.random.default_rng(3)
        base = rng.standard_normal(5000)
        wide = base * 10.0
        assert scott_bandwidth(wide) == pytest.approx(10.0 * scott_bandwidth(base), rel=1e-6)

    def test_scott_known_value(self) -> None:
        rng = np.random.default_rng(4)
        values = rng.standard_normal(10_000)
        expected = robust_scale(values) * 10_000 ** (-1.0 / 5.0)
        assert scott_bandwidth(values) == pytest.approx(expected)

    def test_silverman_close_to_scott_in_1d(self) -> None:
        rng = np.random.default_rng(5)
        values = rng.standard_normal(5000)
        ratio = silverman_bandwidth(values) / scott_bandwidth(values)
        assert ratio == pytest.approx((4.0 / 3.0) ** 0.2, rel=1e-6)

    def test_dimension_exponent(self) -> None:
        rng = np.random.default_rng(6)
        values = rng.standard_normal(4096)
        h1 = scott_bandwidth(values, dimensions=1)
        h3 = scott_bandwidth(values, dimensions=3)
        assert h3 > h1  # slower decay with n in higher dimensions

    def test_positive_for_constant_column(self) -> None:
        values = np.full(1000, 42.0)
        assert scott_bandwidth(values) > 0
        assert silverman_bandwidth(values) > 0


class TestCrossValidation:
    def test_lscv_returns_candidate(self) -> None:
        rng = np.random.default_rng(7)
        values = rng.standard_normal(400)
        candidates = bandwidth_grid(values, size=10)
        h = lscv_bandwidth(values, candidates=candidates)
        assert any(np.isclose(h, candidates))

    def test_lscv_prefers_small_bandwidth_for_multimodal(self) -> None:
        rng = np.random.default_rng(8)
        values = np.concatenate([rng.normal(0, 0.3, 500), rng.normal(10, 0.3, 500)])
        h_cv = lscv_bandwidth(values)
        h_scott = scott_bandwidth(values)
        assert h_cv < h_scott

    def test_mlcv_prefers_small_bandwidth_for_multimodal(self) -> None:
        rng = np.random.default_rng(9)
        values = np.concatenate([rng.normal(0, 0.3, 500), rng.normal(10, 0.3, 500)])
        assert mlcv_bandwidth(values) < scott_bandwidth(values)

    def test_cv_with_tiny_sample_falls_back_to_scott(self) -> None:
        values = np.array([1.0, 2.0])
        assert lscv_bandwidth(values) == pytest.approx(scott_bandwidth(values))
        assert mlcv_bandwidth(values) == pytest.approx(scott_bandwidth(values))

    def test_lscv_epanechnikov_kernel_runs(self) -> None:
        rng = np.random.default_rng(10)
        values = rng.standard_normal(300)
        h = lscv_bandwidth(values, kernel="epanechnikov")
        assert h > 0

    def test_subsampling_keeps_result_in_grid_range(self) -> None:
        rng = np.random.default_rng(11)
        values = rng.standard_normal(3000)
        full = lscv_bandwidth(values, max_points=3000)
        subsampled = lscv_bandwidth(values, max_points=500, rng=np.random.default_rng(0))
        # Sub-sampling the pairwise-difference matrix changes the optimum a
        # little but must stay in the same order of magnitude.
        assert subsampled > 0
        assert 0.2 < subsampled / full < 5.0


class TestSelectBandwidth:
    def test_named_rules(self, rng: np.random.Generator) -> None:
        values = rng.standard_normal(500)
        for rule in ("scott", "silverman", "lscv", "mlcv"):
            assert select_bandwidth(values, rule=rule) > 0

    def test_unknown_rule_raises(self) -> None:
        with pytest.raises(InvalidParameterError):
            select_bandwidth(np.arange(10.0), rule="magic")


class TestBandwidthGrid:
    def test_grid_is_increasing_and_positive(self) -> None:
        rng = np.random.default_rng(12)
        grid = bandwidth_grid(rng.standard_normal(200), size=15)
        assert grid.size == 15
        assert np.all(grid > 0)
        assert np.all(np.diff(grid) > 0)

    def test_grid_brackets_scott(self) -> None:
        rng = np.random.default_rng(13)
        values = rng.standard_normal(200)
        grid = bandwidth_grid(values)
        h = scott_bandwidth(values)
        assert grid[0] < h < grid[-1]

    def test_grid_too_small_raises(self) -> None:
        with pytest.raises(InvalidParameterError):
            bandwidth_grid(np.arange(10.0), size=1)


class TestLocalFactors:
    def test_geometric_mean_close_to_one_without_clipping(self) -> None:
        rng = np.random.default_rng(14)
        density = rng.uniform(0.5, 2.0, 1000)
        factors = local_bandwidth_factors(density, sensitivity=0.5, max_factor=100.0)
        assert np.exp(np.mean(np.log(factors))) == pytest.approx(1.0, rel=1e-6)

    def test_low_density_gets_larger_factor(self) -> None:
        density = np.array([0.01, 1.0, 5.0])
        factors = local_bandwidth_factors(density, sensitivity=0.5, max_factor=100.0)
        assert factors[0] > factors[1] > factors[2]

    def test_zero_sensitivity_gives_unit_factors(self) -> None:
        density = np.array([0.1, 1.0, 10.0])
        np.testing.assert_allclose(local_bandwidth_factors(density, sensitivity=0.0), 1.0)

    def test_factors_clipped(self) -> None:
        density = np.array([1e-9, 1.0, 1e9])
        factors = local_bandwidth_factors(density, sensitivity=1.0, max_factor=2.0)
        assert np.all(factors <= 2.0 + 1e-12)
        assert np.all(factors >= 0.5 - 1e-12)

    def test_invalid_sensitivity_raises(self) -> None:
        with pytest.raises(InvalidParameterError):
            local_bandwidth_factors(np.ones(3), sensitivity=1.5)

    def test_invalid_max_factor_raises(self) -> None:
        with pytest.raises(InvalidParameterError):
            local_bandwidth_factors(np.ones(3), max_factor=0.5)

    def test_empty_input(self) -> None:
        assert local_bandwidth_factors(np.array([])).size == 0


class TestKnnBandwidths:
    def test_shape_and_positivity(self) -> None:
        rng = np.random.default_rng(15)
        values = rng.standard_normal(200)
        h = knn_bandwidths(values, k=10)
        assert h.shape == values.shape
        assert np.all(h > 0)

    def test_sparse_region_gets_larger_bandwidth(self) -> None:
        values = np.concatenate([np.linspace(0, 1, 100), [10.0]])
        h = knn_bandwidths(values, k=5)
        assert h[-1] > np.median(h[:-1])

    def test_single_point(self) -> None:
        assert knn_bandwidths(np.array([3.0])).size == 1

    def test_empty(self) -> None:
        assert knn_bandwidths(np.array([])).size == 0
