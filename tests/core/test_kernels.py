"""Unit tests for the smoothing kernels."""

from __future__ import annotations

import math

import numpy as np
import pytest
from scipy import integrate

from repro.core.errors import InvalidParameterError
from repro.core.kernels import (
    KERNELS,
    BiweightKernel,
    EpanechnikovKernel,
    GaussianKernel,
    Kernel,
    TriangularKernel,
    UniformKernel,
    get_kernel,
)

ALL_KERNELS = [cls() for cls in KERNELS.values()]


@pytest.mark.parametrize("kernel", ALL_KERNELS, ids=lambda k: k.name)
class TestKernelContracts:
    """Properties every kernel must satisfy."""

    def test_pdf_nonnegative(self, kernel: Kernel) -> None:
        u = np.linspace(-5, 5, 401)
        assert np.all(kernel.pdf(u) >= 0.0)

    def test_pdf_symmetric(self, kernel: Kernel) -> None:
        u = np.linspace(0, 5, 101)
        np.testing.assert_allclose(kernel.pdf(u), kernel.pdf(-u), atol=1e-12)

    def test_pdf_integrates_to_one(self, kernel: Kernel) -> None:
        radius = kernel.support_radius if math.isfinite(kernel.support_radius) else 10.0
        value, _ = integrate.quad(lambda x: float(kernel.pdf(np.array([x]))[0]), -radius, radius)
        assert value == pytest.approx(1.0, abs=1e-6)

    def test_cdf_monotone_and_bounded(self, kernel: Kernel) -> None:
        u = np.linspace(-6, 6, 301)
        cdf = kernel.cdf(u)
        assert np.all(np.diff(cdf) >= -1e-12)
        assert np.all(cdf >= -1e-12)
        assert np.all(cdf <= 1.0 + 1e-12)

    def test_cdf_limits(self, kernel: Kernel) -> None:
        assert kernel.cdf(np.array([-100.0]))[0] == pytest.approx(0.0, abs=1e-9)
        assert kernel.cdf(np.array([100.0]))[0] == pytest.approx(1.0, abs=1e-9)

    def test_cdf_at_zero_is_half(self, kernel: Kernel) -> None:
        assert kernel.cdf(np.array([0.0]))[0] == pytest.approx(0.5, abs=1e-12)

    def test_cdf_matches_numeric_integral_of_pdf(self, kernel: Kernel) -> None:
        radius = kernel.support_radius if math.isfinite(kernel.support_radius) else 8.0
        for upper in (-0.7, 0.0, 0.4, 0.9):
            numeric, _ = integrate.quad(
                lambda x: float(kernel.pdf(np.array([x]))[0]), -radius, upper
            )
            assert kernel.cdf(np.array([upper]))[0] == pytest.approx(numeric, abs=1e-6)

    def test_interval_mass_full_support(self, kernel: Kernel) -> None:
        mass = kernel.interval_mass(np.array([-50.0]), np.array([50.0]))
        assert mass[0] == pytest.approx(1.0, abs=1e-9)

    def test_interval_mass_empty_interval(self, kernel: Kernel) -> None:
        mass = kernel.interval_mass(np.array([0.3]), np.array([0.3]))
        assert mass[0] == pytest.approx(0.0, abs=1e-12)

    def test_interval_mass_additivity(self, kernel: Kernel) -> None:
        left = kernel.interval_mass(np.array([-2.0]), np.array([0.1]))[0]
        right = kernel.interval_mass(np.array([0.1]), np.array([2.0]))[0]
        total = kernel.interval_mass(np.array([-2.0]), np.array([2.0]))[0]
        assert left + right == pytest.approx(total, abs=1e-9)

    def test_variance_matches_numeric_second_moment(self, kernel: Kernel) -> None:
        radius = kernel.support_radius if math.isfinite(kernel.support_radius) else 12.0
        value, _ = integrate.quad(
            lambda x: x * x * float(kernel.pdf(np.array([x]))[0]), -radius, radius
        )
        assert kernel.variance == pytest.approx(value, rel=1e-4)

    def test_roughness_matches_numeric_integral(self, kernel: Kernel) -> None:
        radius = kernel.support_radius if math.isfinite(kernel.support_radius) else 12.0
        value, _ = integrate.quad(
            lambda x: float(kernel.pdf(np.array([x]))[0]) ** 2, -radius, radius
        )
        assert kernel.roughness == pytest.approx(value, rel=1e-4)

    def test_compact_kernels_vanish_outside_support(self, kernel: Kernel) -> None:
        if not math.isfinite(kernel.support_radius):
            pytest.skip("unbounded support")
        outside = np.array([kernel.support_radius + 0.01, -kernel.support_radius - 0.01])
        np.testing.assert_allclose(kernel.pdf(outside), 0.0, atol=1e-12)


class TestKernelRegistry:
    def test_get_kernel_by_name(self) -> None:
        assert isinstance(get_kernel("gaussian"), GaussianKernel)
        assert isinstance(get_kernel("epanechnikov"), EpanechnikovKernel)
        assert isinstance(get_kernel("biweight"), BiweightKernel)
        assert isinstance(get_kernel("triangular"), TriangularKernel)
        assert isinstance(get_kernel("uniform"), UniformKernel)

    def test_get_kernel_passthrough(self) -> None:
        kernel = EpanechnikovKernel()
        assert get_kernel(kernel) is kernel

    def test_get_kernel_unknown_raises(self) -> None:
        with pytest.raises(InvalidParameterError):
            get_kernel("not-a-kernel")

    def test_registry_names_match_instances(self) -> None:
        for name, cls in KERNELS.items():
            assert cls().name == name

    def test_kernel_equality_by_type(self) -> None:
        assert GaussianKernel() == GaussianKernel()
        assert GaussianKernel() != EpanechnikovKernel()
        assert hash(GaussianKernel()) == hash(GaussianKernel())


class TestKernelConstants:
    def test_gaussian_roughness_value(self) -> None:
        assert GaussianKernel().roughness == pytest.approx(1.0 / (2.0 * math.sqrt(math.pi)))

    def test_epanechnikov_is_most_efficient(self) -> None:
        epan = EpanechnikovKernel()
        assert epan.efficiency() == pytest.approx(1.0)
        for kernel in ALL_KERNELS:
            assert kernel.efficiency() <= 1.0 + 1e-12

    def test_canonical_bandwidth_factor_positive(self) -> None:
        for kernel in ALL_KERNELS:
            assert kernel.canonical_bandwidth_factor > 0
