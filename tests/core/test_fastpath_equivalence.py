"""Equivalence of the query fast path and the dense reference path.

The support-culling fast path (:mod:`repro.core.fastpath`) must be
observationally equivalent to the dense path within the documented
:data:`~repro.core.fastpath.DEFAULT_ATOL` — for **every** registered
estimator (non-kernel synopses route both "paths" through identical code, so
for them the sweep pins exactness), on hypothesis-generated random boxes plus
the adversarial specials: degenerate point boxes, one-sided and full-domain
(±inf) boxes, and boxes entirely outside the data domain.

Staleness: the index is invalidated by a maintenance epoch, not per-tuple
updates — insert → estimate → flush → compress → estimate must stay
equivalent at every step, and the cached index must actually be reused
between estimates that did not mutate the synopsis.

Composition: per-shard indexes under :class:`~repro.shard.sharded.ShardedEstimator`
and index survival across the serving layer's copy-on-write
``checkout``/``publish`` cycle.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import fastpath
from repro.core.estimator import (
    SelectivityEstimator,
    available_estimators,
    create_estimator,
)
from repro.core.fastpath import DEFAULT_ATOL, fastpath_disabled
from repro.core.kde import KDESelectivityEstimator
from repro.core.streaming import StreamingADE
from repro.data.generators import gaussian_mixture_table
from repro.engine.table import Table
from repro.serve import EstimatorServer
from repro.shard.sharded import ShardedEstimator
from repro.workload.queries import CompiledQueries

ALL_ESTIMATORS = sorted(available_estimators())

#: Constructor overrides keeping per-test fit cost small.
_FAST_KWARGS: dict[str, dict] = {
    "kde": {"sample_size": 400},
    "adaptive_kde": {"sample_size": 400},
    "sampling": {"sample_size": 200},
    "reservoir_sampling": {"sample_size": 200},
    "streaming_ade": {"max_kernels": 64},
    "grid": {"cells_per_dim": 8},
    "st_histogram": {"cells_per_dim": 6},
    "wavelet": {"resolution": 64, "coefficients": 16},
}

_TABLE: Table | None = None
_FITTED: dict[str, SelectivityEstimator] = {}


def _table() -> Table:
    global _TABLE
    if _TABLE is None:
        _TABLE = gaussian_mixture_table(
            rows=4000, dimensions=2, components=3, separation=4.0, seed=11
        )
    return _TABLE


def _fitted(name: str) -> SelectivityEstimator:
    # Module-level cache instead of pytest fixtures: hypothesis re-runs the
    # test body many times and must not re-fit the synopsis each time.
    if name not in _FITTED:
        _FITTED[name] = create_estimator(name, **_FAST_KWARGS.get(name, {})).fit(_table())
    return _FITTED[name]


def _special_boxes(dims: int) -> list[tuple[np.ndarray, np.ndarray]]:
    """Degenerate, one-sided, full-domain and out-of-domain boxes."""
    inf = np.inf
    return [
        (np.full(dims, 0.0), np.full(dims, 0.0)),  # point box
        (np.full(dims, -inf), np.full(dims, inf)),  # full domain
        (np.full(dims, -inf), np.full(dims, 0.5)),  # one-sided
        (np.full(dims, 1e6), np.full(dims, 2e6)),  # far outside the data
    ]


def _plan(
    estimator: SelectivityEstimator, boxes: list[tuple[np.ndarray, np.ndarray]]
) -> CompiledQueries:
    dims = len(estimator.columns)
    boxes = boxes + _special_boxes(dims)
    lows = np.stack([np.broadcast_to(np.asarray(b[0], dtype=float), dims) for b in boxes])
    highs = np.stack([np.broadcast_to(np.asarray(b[1], dtype=float), dims) for b in boxes])
    return CompiledQueries(estimator.columns, lows, highs)


def _assert_fast_matches_dense(estimator, plan, atol: float = DEFAULT_ATOL) -> None:
    fast = estimator.estimate_batch(plan)
    with fastpath_disabled():
        dense = estimator.estimate_batch(plan)
    np.testing.assert_allclose(fast, dense, rtol=0.0, atol=atol)


_coord = st.floats(min_value=-12.0, max_value=12.0, allow_nan=False)
_interval = st.tuples(_coord, _coord).map(sorted)
_box = st.tuples(_interval, _interval).map(
    lambda ivs: (
        np.array([ivs[0][0], ivs[1][0]]),
        np.array([ivs[0][1], ivs[1][1]]),
    )
)
_boxes = st.lists(_box, min_size=1, max_size=8)


def _probe_boxes() -> list[tuple[np.ndarray, np.ndarray]]:
    """A fixed selective workload used by the staleness/composition tests."""
    rng = np.random.default_rng(5)
    centers = rng.uniform(-6, 6, size=(40, 2))
    return [(c - 0.4, c + 0.4) for c in centers]


@pytest.mark.parametrize("name", ALL_ESTIMATORS)
@given(boxes=_boxes)
@settings(max_examples=15, deadline=None)
def test_fast_matches_dense_on_random_boxes(name: str, boxes) -> None:
    estimator = _fitted(name)
    _assert_fast_matches_dense(estimator, _plan(estimator, boxes))


class TestDenseReferenceReachable:
    """`fastpath=False` pins the dense path and stays contract-complete."""

    def test_fastpath_false_never_builds_an_index(self) -> None:
        table = _table()
        pinned = KDESelectivityEstimator(sample_size=400, fastpath=False).fit(table)
        plan = _plan(pinned, [(np.array([-1.0, -1.0]), np.array([1.0, 1.0]))])
        pinned.estimate_batch(plan)
        assert pinned._support_cache is None
        assert pinned.config()["fastpath"] is False
        # and its answers agree with the fast twin within the documented atol
        fast = KDESelectivityEstimator(sample_size=400).fit(table)
        assert fast.estimate_batch(plan) == pytest.approx(
            pinned.estimate_batch(plan), abs=DEFAULT_ATOL
        )

    def test_disabled_context_restores_switch(self) -> None:
        assert fastpath.fastpath_enabled()
        with fastpath_disabled():
            assert not fastpath.fastpath_enabled()
        assert fastpath.fastpath_enabled()


class TestStaleness:
    """insert → estimate → flush → compress all rebuild the index lazily."""

    def test_streaming_maintenance_keeps_equivalence(self) -> None:
        rng = np.random.default_rng(17)
        estimator = StreamingADE(max_kernels=64, chunk_size=32)
        estimator.start(["x0", "x1"])
        plan = _plan(estimator, _probe_boxes())

        estimator.insert(rng.normal(size=(200, 2)))
        _assert_fast_matches_dense(estimator, plan)  # flushes + builds index
        cached = estimator._support_cache
        assert cached is not None

        # No mutation between estimates: the cached index must be reused.
        estimator.estimate_batch(plan)
        assert estimator._support_cache is cached

        # A partial insert leaves rows buffered; the estimate-side flush must
        # fold them in and invalidate the index (epoch moved).
        estimator.insert(rng.normal(size=(7, 2)) + 3.0)
        _assert_fast_matches_dense(estimator, plan)
        assert estimator._support_cache is not cached

        estimator.insert(rng.normal(size=(500, 2)) - 2.0)
        estimator.flush()
        _assert_fast_matches_dense(estimator, plan)

        estimator.compress(16)
        assert estimator.kernel_count <= 16
        _assert_fast_matches_dense(estimator, plan)

    def test_kde_set_bandwidths_invalidates(self) -> None:
        estimator = KDESelectivityEstimator(sample_size=400).fit(_table())
        plan = _plan(estimator, _probe_boxes())
        _assert_fast_matches_dense(estimator, plan)
        cached = estimator._support_cache
        assert cached is not None
        estimator.set_bandwidths(estimator.bandwidths * 2.5)
        assert estimator._support_cache is None
        _assert_fast_matches_dense(estimator, plan)

    def test_snapshot_restore_invalidates(self) -> None:
        estimator = StreamingADE(max_kernels=64).fit(_table())
        plan = _plan(estimator, _probe_boxes())
        _assert_fast_matches_dense(estimator, plan)
        restored = StreamingADE(max_kernels=64)
        restored.load_state(estimator.state_dict())
        assert restored._support_cache is None
        _assert_fast_matches_dense(restored, plan)
        np.testing.assert_array_equal(
            restored.estimate_batch(plan), estimator.estimate_batch(plan)
        )


class TestComposition:
    """Per-shard indexes and index survival across serving swaps."""

    def test_sharded_shards_keep_private_indexes(self) -> None:
        sharded = ShardedEstimator(
            StreamingADE(max_kernels=64), shards=2, partitioner="hash"
        ).fit(_table())
        plan = _plan(sharded, _probe_boxes())
        _assert_fast_matches_dense(sharded, plan)
        caches = [shard._support_cache for shard in sharded.shard_estimators]
        assert all(cache is not None for cache in caches)
        assert caches[0][1] is not caches[1][1]  # one index per shard
        # A routed insert only touches the receiving shards' synopses; the
        # estimate afterwards stays equivalent to the dense path.
        rng = np.random.default_rng(23)
        sharded.insert(rng.normal(size=(300, 2)))
        sharded.flush()
        _assert_fast_matches_dense(sharded, plan)

    def test_index_survives_checkout_publish(self) -> None:
        model = StreamingADE(max_kernels=64).fit(_table())
        server = EstimatorServer(model, cache_size=8)
        plan = _plan(model, _probe_boxes())
        served_before = server.estimate_batch(plan)
        assert server.model._support_cache is not None

        writer = server.checkout()
        # The copy-on-write checkout carries the warm index along ...
        assert writer._support_cache is not None
        assert writer._support_cache[1] is not server.model._support_cache[1]
        rng = np.random.default_rng(29)
        writer.insert(rng.normal(size=(400, 2)) + 1.5)
        writer.flush()
        server.publish(writer)

        served_after = server.estimate_batch(plan)
        with fastpath_disabled():
            dense_after = server.model.estimate_batch(plan)
        np.testing.assert_allclose(served_after, dense_after, rtol=0.0, atol=DEFAULT_ATOL)
        assert not np.array_equal(served_before, served_after)
