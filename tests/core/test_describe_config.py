"""describe()/config() must round-trip through ``estimator_from_config``.

Regression for the satellite bugfix: several estimators used to emit
describe keys that were not valid constructor parameters, so a description
could not be fed back into the registry.  Now ``config()`` is the
reconstruction recipe, ``describe()`` is a strict superset (runtime metadata
lives under the reserved ``DESCRIBE_METADATA_KEYS``), and
``estimator_from_config`` accepts either — for every registered estimator.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.estimator import (
    DESCRIBE_METADATA_KEYS,
    available_estimators,
    create_estimator,
    estimator_from_config,
)
from repro.core.feedback import FeedbackAdaptiveEstimator
from repro.core.kde import KDESelectivityEstimator

ALL_ESTIMATORS = sorted(available_estimators())

_FAST_KWARGS: dict[str, dict] = {
    "kde": {"sample_size": 150},
    "adaptive_kde": {"sample_size": 150},
    "sampling": {"sample_size": 150},
    "reservoir_sampling": {"sample_size": 150},
    "streaming_ade": {"max_kernels": 32},
    "grid": {"cells_per_dim": 8},
    "st_histogram": {"cells_per_dim": 6},
    "wavelet": {"resolution": 64, "coefficients": 16},
}


@pytest.mark.parametrize("name", ALL_ESTIMATORS)
class TestDescribeRoundTrip:
    def test_config_rebuilds_equivalent_estimator(self, name: str) -> None:
        estimator = create_estimator(name, **_FAST_KWARGS.get(name, {}))
        clone = estimator_from_config(estimator.config())
        assert type(clone) is type(estimator)
        assert clone.config() == estimator.config()

    def test_describe_round_trips(self, name: str, small_table) -> None:
        estimator = create_estimator(name, **_FAST_KWARGS.get(name, {})).fit(small_table)
        description = estimator.describe()
        clone = estimator_from_config(description)
        assert type(clone) is type(estimator)
        assert not clone.is_fitted  # a description rebuilds the recipe, not the fit
        assert clone.config() == estimator.config()

    def test_describe_is_config_plus_reserved_metadata(
        self, name: str, small_table
    ) -> None:
        estimator = create_estimator(name, **_FAST_KWARGS.get(name, {})).fit(small_table)
        config = estimator.config()
        description = estimator.describe()
        extras = set(description) - set(config)
        # Every extra key must be reserved (so estimator_from_config strips
        # it), and the always-present runtime metadata must all be there;
        # conditional reserved keys (the sharded degraded-mode surface) only
        # appear when their condition holds.
        assert extras <= set(DESCRIBE_METADATA_KEYS)
        assert {"class", "fitted", "columns", "rows_modelled", "memory_bytes"} <= extras
        for key, value in config.items():
            assert description[key] == value

    def test_refit_clone_reproduces_estimates(
        self, name: str, small_table, workload_1d
    ) -> None:
        """Every built-in estimator is seeded, so config + same table ⇒ same model."""
        estimator = create_estimator(name, **_FAST_KWARGS.get(name, {})).fit(small_table)
        clone = estimator_from_config(estimator.describe()).fit(small_table)
        np.testing.assert_allclose(
            clone.estimate_batch(workload_1d),
            estimator.estimate_batch(workload_1d),
            rtol=0.0,
            atol=0.0,
        )


class TestNestedBaseConfig:
    def test_feedback_base_round_trips_through_config(self) -> None:
        estimator = FeedbackAdaptiveEstimator(
            base=KDESelectivityEstimator(sample_size=64, bandwidth_rule="silverman"),
            max_regions=12,
        )
        clone = estimator_from_config(estimator.config())
        assert isinstance(clone.base, KDESelectivityEstimator)
        assert clone.base.sample_size == 64
        assert clone.base.bandwidth_rule == "silverman"
        assert clone.max_regions == 12

    def test_feedback_accepts_base_name_string(self) -> None:
        estimator = FeedbackAdaptiveEstimator(base="equidepth")
        assert estimator.base.name == "equidepth"
