"""Unit tests for the streaming adaptive density estimator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import InvalidParameterError, StreamError
from repro.core.streaming import StreamingADE
from repro.data.generators import gaussian_mixture_table, uniform_table
from repro.engine.table import Table
from repro.workload.queries import RangeQuery


class TestConstruction:
    def test_invalid_parameters(self) -> None:
        with pytest.raises(InvalidParameterError):
            StreamingADE(max_kernels=1)
        with pytest.raises(InvalidParameterError):
            StreamingADE(decay=0.0)
        with pytest.raises(InvalidParameterError):
            StreamingADE(decay=1.5)
        with pytest.raises(InvalidParameterError):
            StreamingADE(merge_threshold=-1.0)
        with pytest.raises(InvalidParameterError):
            StreamingADE(smoothing_factor=0.0)

    def test_insert_before_start_raises(self) -> None:
        with pytest.raises(StreamError):
            StreamingADE().insert(np.zeros((1, 1)))

    def test_start_requires_columns(self) -> None:
        with pytest.raises(InvalidParameterError):
            StreamingADE().start([])

    def test_insert_wrong_dimensionality_raises(self) -> None:
        estimator = StreamingADE().start(["a", "b"])
        with pytest.raises(StreamError):
            estimator.insert(np.zeros((3, 3)))


class TestMaintenance:
    def test_kernel_budget_never_exceeded(self) -> None:
        estimator = StreamingADE(max_kernels=32).start(["x0"])
        rng = np.random.default_rng(0)
        for _ in range(20):
            estimator.insert(rng.normal(size=(100, 1)))
            assert estimator.kernel_count <= 32
        assert estimator.row_count == 2000

    def test_weights_conserve_count_without_decay(self) -> None:
        estimator = StreamingADE(max_kernels=16, decay=1.0).start(["x0"])
        estimator.insert(np.random.default_rng(1).normal(size=(500, 1)))
        assert estimator.effective_count == pytest.approx(500.0, rel=1e-9)

    def test_decay_reduces_effective_count(self) -> None:
        estimator = StreamingADE(max_kernels=16, decay=0.99).start(["x0"])
        estimator.insert(np.random.default_rng(2).normal(size=(1000, 1)))
        assert estimator.effective_count < 1000.0

    def test_insert_row_convenience(self) -> None:
        estimator = StreamingADE(max_kernels=8).start(["a", "b"])
        estimator.insert_row([1.0, 2.0])
        assert estimator.kernel_count == 1
        assert estimator.row_count == 1

    def test_duplicate_heavy_stream_stays_compact(self) -> None:
        estimator = StreamingADE(max_kernels=64, merge_threshold=0.5).start(["x0"])
        estimator.insert(np.zeros((500, 1)))
        assert estimator.kernel_count < 10

    def test_compress_reduces_kernel_count(self) -> None:
        estimator = StreamingADE(max_kernels=128).start(["x0"])
        estimator.insert(np.random.default_rng(3).uniform(size=(500, 1)))
        before = estimator.kernel_count
        estimator.compress(16)
        assert estimator.kernel_count <= 16 < before
        # Total weight is preserved by pairwise moment-preserving merges.
        assert estimator.effective_count == pytest.approx(500.0, rel=1e-9)

    def test_compress_invalid_target_raises(self) -> None:
        estimator = StreamingADE().start(["x0"])
        with pytest.raises(InvalidParameterError):
            estimator.compress(0)

    def test_memory_scales_with_kernels(self) -> None:
        small = StreamingADE(max_kernels=16).start(["x0"])
        large = StreamingADE(max_kernels=256).start(["x0"])
        rng = np.random.default_rng(4)
        data = rng.uniform(size=(2000, 1))
        small.insert(data)
        large.insert(data)
        assert large.memory_bytes() > small.memory_bytes()

    def test_fit_streams_whole_table(self, mixture_table_1d: Table) -> None:
        estimator = StreamingADE(max_kernels=64).fit(mixture_table_1d)
        assert estimator.row_count == mixture_table_1d.row_count
        assert estimator.kernel_count <= 64


class TestEstimates:
    def test_empty_model_estimates_zero(self) -> None:
        estimator = StreamingADE().start(["x0"])
        assert estimator.estimate(RangeQuery({"x0": (0, 1)})) == 0.0

    def test_uniform_stream_accuracy(self) -> None:
        table = uniform_table(20_000, dimensions=1, seed=5)
        estimator = StreamingADE(max_kernels=128).fit(table)
        estimate = estimator.estimate(RangeQuery({"x0": (0.25, 0.75)}))
        assert estimate == pytest.approx(0.5, abs=0.05)

    def test_normal_stream_accuracy(self) -> None:
        rng = np.random.default_rng(6)
        estimator = StreamingADE(max_kernels=128).start(["x0"])
        estimator.insert(rng.standard_normal((10_000, 1)))
        estimate = estimator.estimate(RangeQuery({"x0": (-1.0, 1.0)}))
        assert estimate == pytest.approx(0.683, abs=0.06)

    def test_multimodal_gap_gets_little_mass(self) -> None:
        table = gaussian_mixture_table(10_000, dimensions=1, components=2, separation=10.0, seed=7)
        estimator = StreamingADE(max_kernels=128).fit(table)
        values = table.column("x0")
        gap_center = float(values.mean())
        gap_query = RangeQuery({"x0": (gap_center - 0.5, gap_center + 0.5)})
        truth = table.true_selectivity(gap_query)
        assert estimator.estimate(gap_query) <= truth + 0.05

    def test_estimates_valid_for_2d(self, mixture_table_2d: Table, workload_2d) -> None:
        estimator = StreamingADE(max_kernels=128).fit(mixture_table_2d)
        for query in workload_2d:
            assert 0.0 <= estimator.estimate(query) <= 1.0

    def test_drift_adaptation_with_decay(self) -> None:
        rng = np.random.default_rng(8)
        decayed = StreamingADE(max_kernels=64, decay=0.999).start(["x0"])
        landmark = StreamingADE(max_kernels=64, decay=1.0).start(["x0"])
        old = rng.normal(0.0, 0.5, size=(3000, 1))
        new = rng.normal(20.0, 0.5, size=(3000, 1))
        for estimator in (decayed, landmark):
            estimator.insert(old)
            estimator.insert(new)
        query_new = RangeQuery({"x0": (19.0, 21.0)})
        # The decayed model concentrates on the post-drift distribution.
        assert decayed.estimate(query_new) > landmark.estimate(query_new)
        assert decayed.estimate(query_new) > 0.8

    def test_density_positive_near_data(self) -> None:
        rng = np.random.default_rng(9)
        estimator = StreamingADE(max_kernels=64).start(["x0"])
        estimator.insert(rng.standard_normal((2000, 1)))
        density = estimator.density(np.array([[0.0], [50.0]]))
        assert density[0] > density[1]
        assert density[1] == pytest.approx(0.0, abs=1e-6)

    def test_density_dimension_mismatch_raises(self) -> None:
        estimator = StreamingADE(max_kernels=16).start(["a", "b"])
        estimator.insert(np.zeros((10, 2)))
        with pytest.raises(InvalidParameterError):
            estimator.density(np.zeros((3, 1)))

    def test_kernel_introspection_copies(self) -> None:
        estimator = StreamingADE(max_kernels=16).start(["x0"])
        estimator.insert(np.random.default_rng(10).uniform(size=(100, 1)))
        means = estimator.kernel_means
        means[:] = 0.0
        assert not np.allclose(estimator.kernel_means, 0.0)
        assert estimator.kernel_weights.shape[0] == estimator.kernel_count
        assert estimator.kernel_variances.shape == estimator.kernel_means.shape


class TestEmptyInserts:
    def test_empty_2d_insert_is_noop(self) -> None:
        estimator = StreamingADE(max_kernels=8).start(["a", "b"])
        estimator.insert(np.empty((0, 2)))
        assert estimator.row_count == 0
        assert estimator.kernel_count == 0

    def test_empty_1d_insert_is_noop(self) -> None:
        estimator = StreamingADE(max_kernels=8).start(["a", "b"])
        estimator.insert(np.empty(0))
        estimator.insert([])
        assert estimator.row_count == 0
        assert estimator.kernel_count == 0

    def test_empty_insert_between_batches_changes_nothing(self) -> None:
        rng = np.random.default_rng(11)
        data = rng.normal(size=(300, 1))
        with_empty = StreamingADE(max_kernels=16, chunk_size=64).start(["x0"])
        without = StreamingADE(max_kernels=16, chunk_size=64).start(["x0"])
        with_empty.insert(data[:100])
        with_empty.insert(np.empty((0, 1)))
        with_empty.insert(data[100:])
        without.insert(data)
        query = RangeQuery({"x0": (-1.0, 1.0)})
        assert with_empty.estimate(query) == without.estimate(query)


class TestPruneBelowCapacity:
    def test_decayed_stale_kernels_pruned_below_capacity(self) -> None:
        """Regression: pruning used to run only on the at-capacity branch.

        With decay < 1 and the kernel count below ``max_kernels``, kernels of
        a long-abandoned mode must still be dropped once their weight decays
        to insignificance instead of squatting on budget forever.
        """
        estimator = StreamingADE(max_kernels=256, decay=0.99, prune_weight=1e-3)
        estimator.start(["x0"])
        rng = np.random.default_rng(5)
        estimator.insert(rng.normal(0.0, 0.5, size=(500, 1)))
        assert estimator.kernel_count < estimator.max_kernels  # below capacity
        bytes_before = estimator.memory_bytes()
        # 3000 tuples at decay 0.99 shrink the old mode's weight by ~1e-13.
        estimator.insert(rng.normal(100.0, 0.5, size=(3000, 1)))
        assert estimator.kernel_count < estimator.max_kernels
        assert np.all(estimator.kernel_means[:, 0] > 50.0), "stale kernels survived"
        assert estimator.memory_bytes() <= bytes_before * 2
        assert estimator.effective_count < 500.0

    def test_sequential_path_also_prunes_below_capacity(self) -> None:
        estimator = StreamingADE(max_kernels=256, decay=0.99)
        estimator.start(["x0"])
        rng = np.random.default_rng(6)
        estimator.insert_sequential(rng.normal(0.0, 0.5, size=(200, 1)))
        # While still below capacity, 1500 decayed inserts must purge the
        # abandoned mode's kernels (the old code never pruned on this branch).
        estimator.insert_sequential(rng.normal(100.0, 0.5, size=(1500, 1)))
        assert np.all(estimator.kernel_means[:, 0] > 50.0)

    def test_landmark_model_never_prunes_fresh_weight(self) -> None:
        estimator = StreamingADE(max_kernels=16, decay=1.0).start(["x0"])
        estimator.insert(np.random.default_rng(7).normal(size=(5000, 1)))
        assert estimator.effective_count == pytest.approx(5000.0, rel=1e-9)


class TestBulkIngestion:
    def test_partial_chunk_is_visible_to_estimates(self) -> None:
        # Fewer rows than chunk_size: the flush-on-query path must fold the
        # pending buffer in before answering.
        estimator = StreamingADE(max_kernels=16, chunk_size=256).start(["x0"])
        estimator.insert(np.zeros((5, 1)))
        assert estimator.row_count == 5
        assert estimator.kernel_count >= 1
        assert estimator.estimate(RangeQuery({"x0": (-1.0, 1.0)})) == pytest.approx(1.0)

    def test_flush_is_idempotent(self) -> None:
        estimator = StreamingADE(max_kernels=16, chunk_size=64).start(["x0"])
        estimator.insert(np.random.default_rng(8).normal(size=(30, 1)))
        estimator.flush()
        count = estimator.kernel_count
        estimator.flush()
        assert estimator.kernel_count == count

    def test_chunk_size_validation(self) -> None:
        with pytest.raises(InvalidParameterError):
            StreamingADE(chunk_size=0)

    def test_insert_sequential_requires_start(self) -> None:
        with pytest.raises(StreamError):
            StreamingADE().insert_sequential(np.zeros((1, 1)))

    def test_bulk_and_sequential_interoperate(self) -> None:
        # Switching paths mid-stream folds the lazy decay scale correctly.
        rng = np.random.default_rng(9)
        estimator = StreamingADE(max_kernels=32, decay=0.999).start(["x0"])
        estimator.insert(rng.normal(size=(300, 1)))
        estimator.insert_sequential(rng.normal(size=(50, 1)))
        estimator.insert(rng.normal(size=(300, 1)))
        assert estimator.row_count == 650
        assert estimator.kernel_count <= 32
        assert 0.0 <= estimator.estimate(RangeQuery({"x0": (-1.0, 1.0)})) <= 1.0

    def test_wrong_width_empty_batch_still_raises(self) -> None:
        estimator = StreamingADE(max_kernels=8).start(["a", "b"])
        with pytest.raises(StreamError):
            estimator.insert(np.empty((0, 5)))
