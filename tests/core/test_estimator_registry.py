"""Tests for the estimator base class contract and the registry."""

from __future__ import annotations

import pytest

from repro.core.errors import InvalidParameterError, NotFittedError
from repro.core.estimator import (
    FLOAT_BYTES,
    SelectivityEstimator,
    available_estimators,
    create_estimator,
    estimator_from_config,
    register_estimator,
)
from repro.engine.table import Table
from repro.workload.queries import RangeQuery

EXPECTED_ESTIMATORS = {
    "kde",
    "adaptive_kde",
    "streaming_ade",
    "feedback_ade",
    "equiwidth",
    "equidepth",
    "grid",
    "sampling",
    "reservoir_sampling",
    "wavelet",
    "st_histogram",
    "independence",
}


class TestRegistry:
    def test_all_estimators_registered(self) -> None:
        assert EXPECTED_ESTIMATORS.issubset(set(available_estimators()))

    def test_create_estimator_by_name(self) -> None:
        estimator = create_estimator("kde", sample_size=10)
        assert estimator.name == "kde"
        assert not estimator.is_fitted

    def test_create_unknown_estimator_raises(self) -> None:
        with pytest.raises(InvalidParameterError):
            create_estimator("no_such_estimator")

    def test_duplicate_registration_raises(self) -> None:
        with pytest.raises(InvalidParameterError):
            register_estimator("kde")(object)

    def test_estimator_from_config(self) -> None:
        estimator = estimator_from_config({"name": "equiwidth", "buckets": 7})
        assert estimator.name == "equiwidth"
        assert estimator.buckets == 7

    def test_estimator_from_config_requires_name(self) -> None:
        with pytest.raises(InvalidParameterError):
            estimator_from_config({"buckets": 7})

    def test_every_registered_estimator_fits_and_estimates(self, small_table: Table) -> None:
        query = RangeQuery({"x0": (0.2, 0.8)})
        for name in EXPECTED_ESTIMATORS:
            kwargs = {"max_kernels": 16} if name == "streaming_ade" else {}
            estimator = create_estimator(name, **kwargs)
            estimator.fit(small_table)
            value = estimator.estimate(query)
            assert 0.0 <= value <= 1.0, name
            assert estimator.memory_bytes() > 0, name


class TestBaseContract:
    def test_describe_structure(self, small_table: Table) -> None:
        estimator = create_estimator("sampling", sample_size=50).fit(small_table)
        description = estimator.describe()
        assert description["name"] == "sampling"
        assert description["columns"] == ["x0"]
        assert description["rows_modelled"] == small_table.row_count
        assert description["memory_bytes"] == estimator.memory_bytes()

    def test_describe_unfitted_has_zero_memory(self) -> None:
        assert create_estimator("sampling").describe()["memory_bytes"] == 0

    def test_repr_mentions_state(self, small_table: Table) -> None:
        estimator = create_estimator("sampling", sample_size=10)
        assert "unfitted" in repr(estimator)
        estimator.fit(small_table)
        assert "fitted" in repr(estimator)

    def test_unfitted_estimate_raises(self) -> None:
        with pytest.raises(NotFittedError):
            create_estimator("equidepth").estimate(RangeQuery({"x0": (0, 1)}))

    def test_clip_fraction(self) -> None:
        assert SelectivityEstimator._clip_fraction(-0.5) == 0.0
        assert SelectivityEstimator._clip_fraction(1.5) == 1.0
        assert SelectivityEstimator._clip_fraction(float("nan")) == 0.0
        assert SelectivityEstimator._clip_fraction(0.25) == 0.25

    def test_float_bytes_constant(self) -> None:
        assert FLOAT_BYTES == 8
