"""Contract tests for the batch-first estimator API.

The core guarantee of the redesign: for every registered estimator,
``estimate_batch`` over a workload is numerically identical (to 1e-12) to
looping the scalar ``estimate`` over the same queries — on 1-D and multi-D
tables, through both the query-list and the pre-compiled-plan entry points —
and the error behaviour (unfitted, uncovered attributes) matches the scalar
contract.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import DimensionMismatchError, NotFittedError
from repro.core.estimator import (
    SelectivityEstimator,
    available_estimators,
    create_estimator,
)
from repro.engine.table import Table
from repro.workload.queries import CompiledQueries, RangeQuery, compile_queries

ALL_ESTIMATORS = sorted(available_estimators())

#: Constructor overrides keeping per-test fit cost small.
_FAST_KWARGS: dict[str, dict] = {
    "kde": {"sample_size": 200},
    "adaptive_kde": {"sample_size": 200},
    "sampling": {"sample_size": 200},
    "reservoir_sampling": {"sample_size": 200},
    "streaming_ade": {"max_kernels": 32},
    "grid": {"cells_per_dim": 8},
    "st_histogram": {"cells_per_dim": 6},
    "wavelet": {"resolution": 64, "coefficients": 16},
}


def _fitted(name: str, table: Table) -> SelectivityEstimator:
    return create_estimator(name, **_FAST_KWARGS.get(name, {})).fit(table)


def _assert_batch_matches_scalar(estimator, queries) -> None:
    scalar = np.array([estimator.estimate(q) for q in queries], dtype=float)
    batch = estimator.estimate_batch(queries)
    assert batch.shape == (len(queries),)
    np.testing.assert_allclose(batch, scalar, rtol=0.0, atol=1e-12)
    plan = compile_queries(queries, estimator.columns)
    np.testing.assert_array_equal(estimator.estimate_batch(plan), batch)


@pytest.mark.parametrize("name", ALL_ESTIMATORS)
class TestBatchScalarEquivalence:
    def test_1d(self, name: str, small_table: Table, workload_1d) -> None:
        _assert_batch_matches_scalar(_fitted(name, small_table), workload_1d)

    def test_multid(self, name: str, mixture_table_2d: Table, workload_2d) -> None:
        _assert_batch_matches_scalar(_fitted(name, mixture_table_2d), workload_2d)

    def test_partial_queries(self, name: str, mixture_table_2d: Table) -> None:
        """Queries constraining a strict subset of the fitted columns."""
        estimator = _fitted(name, mixture_table_2d)
        domain = mixture_table_2d.domain()
        queries = [
            RangeQuery({"x0": (domain["x0"][0], (domain["x0"][0] + domain["x0"][1]) / 2)}),
            RangeQuery({"x1": (domain["x1"][0], domain["x1"][1])}),
            RangeQuery({"x0": (0.0, 1.0), "x1": (-1.0, 0.5)}),
        ]
        _assert_batch_matches_scalar(estimator, queries)

    def test_unfitted_raises(self, name: str) -> None:
        estimator = create_estimator(name, **_FAST_KWARGS.get(name, {}))
        with pytest.raises(NotFittedError):
            estimator.estimate_batch([RangeQuery({"x0": (0.0, 1.0)})])

    def test_uncovered_attribute_raises(self, name: str, small_table: Table) -> None:
        estimator = _fitted(name, small_table)
        with pytest.raises(DimensionMismatchError):
            estimator.estimate_batch([RangeQuery({"other": (0.0, 1.0)})])

    def test_mismatched_plan_raises(self, name: str, small_table: Table) -> None:
        estimator = _fitted(name, small_table)
        plan = CompiledQueries(("other",), np.zeros((2, 1)), np.ones((2, 1)))
        with pytest.raises(DimensionMismatchError):
            estimator.estimate_batch(plan)

    def test_empty_batch(self, name: str, small_table: Table) -> None:
        estimator = _fitted(name, small_table)
        for empty in ([], (), compile_queries([], estimator.columns)):
            result = estimator.estimate_batch(empty)
            assert result.shape == (0,)
            assert result.dtype == np.float64
        # The short-circuit must not swallow plan-routing bugs: an empty plan
        # compiled for a different synopsis still raises.
        foreign = CompiledQueries(("other",), np.zeros((0, 1)), np.zeros((0, 1)))
        with pytest.raises(DimensionMismatchError):
            estimator.estimate_batch(foreign)

    def test_empty_batch_never_touches_the_model(self, name: str, small_table: Table) -> None:
        """The short-circuit happens before plan compilation and estimation."""
        estimator = _fitted(name, small_table)
        calls = []
        original = type(estimator)._estimate_batch

        def spy(self, lows, highs):
            calls.append(lows.shape)
            return original(self, lows, highs)

        type(estimator)._estimate_batch = spy
        try:
            estimator.estimate_batch([])
        finally:
            type(estimator)._estimate_batch = original
        assert calls == []

    def test_cardinality_batch(self, name: str, small_table: Table, workload_1d) -> None:
        estimator = _fitted(name, small_table)
        cardinalities = estimator.estimate_cardinality_batch(workload_1d)
        expected = estimator.estimate_batch(workload_1d) * small_table.row_count
        np.testing.assert_array_equal(cardinalities, expected)


class TestFeedbackEquivalence:
    """Region corrections are the subtlest vectorization: check them after
    the feedback log is populated, not just on a freshly fitted wrapper."""

    @pytest.mark.parametrize("name", ["feedback_ade", "st_histogram"])
    def test_batch_matches_scalar_after_feedback(
        self, name: str, mixture_table_2d: Table, workload_2d
    ) -> None:
        estimator = _fitted(name, mixture_table_2d)
        truths = mixture_table_2d.true_selectivities(workload_2d)
        for query, truth in zip(workload_2d[:30], truths[:30]):
            estimator.feedback(query, float(truth))
        _assert_batch_matches_scalar(estimator, workload_2d)


class TestDeprecatedAlias:
    def test_estimate_many_warns_and_matches(self, small_table: Table, workload_1d) -> None:
        estimator = _fitted("equidepth", small_table)
        with pytest.warns(DeprecationWarning, match="estimate_batch"):
            values = estimator.estimate_many(workload_1d)
        np.testing.assert_array_equal(values, estimator.estimate_batch(workload_1d))


class TestLoopFallback:
    """Third-party estimators that only implement the scalar contract."""

    class ScalarOnly(SelectivityEstimator):
        name = "scalar_only"

        def fit(self, table, columns=None):
            columns = self._resolve_columns(table, columns)
            self._domain = table.domain(columns)
            self._mark_fitted(columns, table.row_count)
            return self

        def estimate(self, query: RangeQuery) -> float:
            lows, highs = self._query_bounds(query)
            fraction = 1.0
            for d, column in enumerate(self._columns):
                low, high = self._domain[column]
                width = max(high - low, 1e-12)
                covered = max(min(highs[d], high) - max(lows[d], low), 0.0)
                fraction *= covered / width
            return self._clip_fraction(fraction)

        def memory_bytes(self) -> int:
            return 0

    class NoEstimate(SelectivityEstimator):
        name = "no_estimate"

        def fit(self, table, columns=None):
            self._mark_fitted(self._resolve_columns(table, columns), table.row_count)
            return self

        def memory_bytes(self) -> int:
            return 0

    def test_scalar_only_estimator_batches_via_loop(self, small_table, workload_1d) -> None:
        estimator = self.ScalarOnly().fit(small_table)
        _assert_batch_matches_scalar(estimator, workload_1d)

    def test_estimator_without_any_path_raises(self, small_table) -> None:
        estimator = self.NoEstimate().fit(small_table)
        with pytest.raises(NotImplementedError):
            estimator.estimate_batch([RangeQuery({"x0": (0.0, 1.0)})])
