"""Ingestion-equivalence suite: bulk insert must match row-at-a-time insertion.

The streaming contract (see :mod:`repro.core.streaming`) promises that the
synopsis a streaming estimator builds depends only on the rows and their
order, never on how the caller sliced the stream into ``insert`` calls.
These tests drive every streaming estimator over stationary / sudden-drift /
gradual-drift streams — with decay enabled and in at-capacity regimes — once
in bulk and once row-at-a-time, and require the resulting estimates to agree
within 1e-6.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.sampling import ReservoirSamplingEstimator
from repro.core.estimator import StreamingEstimator
from repro.core.streaming import StreamingADE
from repro.data.streams import (
    gradual_drift_stream,
    stationary_stream,
    sudden_drift_stream,
)
from repro.workload.queries import RangeQuery

TOLERANCE = 1e-6

# Every registered streaming estimator, in configurations that exercise the
# interesting maintenance regimes (decay on/off, at and below capacity).
ESTIMATOR_FACTORIES = {
    "ade_landmark": lambda: StreamingADE(max_kernels=64, decay=1.0, chunk_size=64),
    "ade_decayed": lambda: StreamingADE(max_kernels=64, decay=0.995, chunk_size=64),
    "ade_at_capacity": lambda: StreamingADE(max_kernels=8, decay=0.99, chunk_size=32),
    "reservoir_uniform": lambda: ReservoirSamplingEstimator(sample_size=32, decay=False),
    "reservoir_decayed": lambda: ReservoirSamplingEstimator(sample_size=32, decay=True),
}

STREAM_FACTORIES = {
    "stationary": lambda d: stationary_stream(dimensions=d, batch_size=100, batches=6, seed=11),
    "sudden": lambda d: sudden_drift_stream(
        dimensions=d, batch_size=100, batches=6, drift_at=(0.5,), shift=8.0, seed=12
    ),
    "gradual": lambda d: gradual_drift_stream(
        dimensions=d, batch_size=100, batches=6, total_shift=8.0, seed=13
    ),
}


def _workload(data: np.ndarray, columns: list[str], count: int = 40) -> list[RangeQuery]:
    """Deterministic range queries spanning the streamed data."""
    rng = np.random.default_rng(99)
    low = data.min(axis=0)
    high = data.max(axis=0)
    queries = []
    for _ in range(count):
        center = rng.uniform(low, high)
        width = rng.uniform(0.05, 0.5) * (high - low)
        queries.append(
            RangeQuery(
                {
                    c: (center[d] - width[d] / 2, center[d] + width[d] / 2)
                    for d, c in enumerate(columns)
                }
            )
        )
    return queries


@pytest.mark.parametrize("stream_name", sorted(STREAM_FACTORIES))
@pytest.mark.parametrize("estimator_name", sorted(ESTIMATOR_FACTORIES))
@pytest.mark.parametrize("dimensions", [1, 2])
def test_bulk_matches_row_at_a_time(
    estimator_name: str, stream_name: str, dimensions: int
) -> None:
    stream = STREAM_FACTORIES[stream_name](dimensions)
    data = stream.materialize()
    columns = stream.column_names

    bulk = ESTIMATOR_FACTORIES[estimator_name]().start(columns)
    rowwise = ESTIMATOR_FACTORIES[estimator_name]().start(columns)
    bulk.insert(data)
    for row in data:
        rowwise.insert_row(row)

    queries = _workload(data, columns)
    np.testing.assert_allclose(
        bulk.estimate_batch(queries),
        rowwise.estimate_batch(queries),
        atol=TOLERANCE,
        rtol=0.0,
        err_msg=f"{estimator_name} diverged on the {stream_name} stream",
    )
    assert bulk.row_count == rowwise.row_count == data.shape[0]


@pytest.mark.parametrize("estimator_name", sorted(ESTIMATOR_FACTORIES))
def test_arbitrary_batch_slicing_is_invariant(estimator_name: str) -> None:
    """Slicing the same stream into uneven batches never changes the model."""
    stream = sudden_drift_stream(
        dimensions=2, batch_size=90, batches=5, drift_at=(0.4,), seed=21
    )
    data = stream.materialize()
    columns = stream.column_names
    queries = _workload(data, columns)

    reference = ESTIMATOR_FACTORIES[estimator_name]().start(columns)
    reference.insert(data)
    expected = reference.estimate_batch(queries)

    rng = np.random.default_rng(5)
    for _ in range(3):
        cuts = np.sort(rng.choice(np.arange(1, data.shape[0]), size=7, replace=False))
        sliced = ESTIMATOR_FACTORIES[estimator_name]().start(columns)
        for piece in np.split(data, cuts):
            sliced.insert(piece)
        np.testing.assert_allclose(
            sliced.estimate_batch(queries), expected, atol=TOLERANCE, rtol=0.0
        )


class TestPropertyBasedEquivalence:
    @given(
        seed=st.integers(0, 2**31 - 1),
        rows=st.integers(5, 250),
        max_kernels=st.integers(2, 24),
        decay=st.sampled_from([1.0, 0.999, 0.97, 0.8]),
        chunk_size=st.integers(1, 48),
    )
    @settings(max_examples=25, deadline=None)
    def test_streaming_ade_slicing_invariance(
        self, seed: int, rows: int, max_kernels: int, decay: float, chunk_size: int
    ) -> None:
        rng = np.random.default_rng(seed)
        data = np.concatenate(
            [
                rng.normal(0.0, 1.0, size=(rows // 2 + 1, 1)),
                rng.normal(6.0, 0.5, size=(rows - rows // 2 - 1 + 1, 1)),
            ]
        )[:rows]
        columns = ["x"]
        build = lambda: StreamingADE(
            max_kernels=max_kernels, decay=decay, chunk_size=chunk_size
        ).start(columns)
        queries = _workload(data, columns, count=15)

        bulk = build()
        bulk.insert(data)
        rowwise = build()
        for row in data:
            rowwise.insert_row(row)
        np.testing.assert_allclose(
            bulk.estimate_batch(queries),
            rowwise.estimate_batch(queries),
            atol=TOLERANCE,
            rtol=0.0,
        )
        # Invariants shared with the sequential reference path.
        assert bulk.kernel_count <= max_kernels
        if decay == 1.0:
            assert bulk.effective_count == pytest.approx(rows, rel=1e-9)

    @given(
        seed=st.integers(0, 2**31 - 1),
        rows=st.integers(1, 120),
        capacity=st.integers(1, 40),
        decayed=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_reservoir_slicing_invariance(
        self, seed: int, rows: int, capacity: int, decayed: bool
    ) -> None:
        rng = np.random.default_rng(seed)
        data = rng.uniform(0.0, 10.0, size=(rows, 2))
        build = lambda: ReservoirSamplingEstimator(
            sample_size=capacity, decay=decayed, seed=7
        ).start(["a", "b"])
        bulk = build()
        bulk.insert(data)
        rowwise = build()
        for row in data:
            rowwise.insert_row(row)
        np.testing.assert_array_equal(
            bulk._reservoir.sample(), rowwise._reservoir.sample()
        )


def test_bulk_tracks_sequential_reference_accuracy() -> None:
    """The bulk policy models the same distribution as the per-tuple loop.

    The two paths make merge decisions at different granularity, so the
    models are not identical — but their estimates must stay close on a
    stationary stream (the drift benchmark enforces the same within 5% on
    Fig. 5-style workloads).
    """
    stream = stationary_stream(dimensions=1, batch_size=200, batches=8, seed=31)
    data = stream.materialize()
    columns = stream.column_names
    bulk = StreamingADE(max_kernels=64).start(columns)
    sequential = StreamingADE(max_kernels=64).start(columns)
    bulk.insert(data)
    sequential.insert_sequential(data)
    queries = _workload(data, columns)
    difference = np.abs(bulk.estimate_batch(queries) - sequential.estimate_batch(queries))
    assert float(difference.mean()) < 0.02
    assert float(difference.max()) < 0.1


def test_every_streaming_estimator_configuration_is_streaming() -> None:
    for factory in ESTIMATOR_FACTORIES.values():
        assert isinstance(factory(), StreamingEstimator)
