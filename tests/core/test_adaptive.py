"""Unit tests for the sample-point adaptive KDE estimator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.adaptive import AdaptiveKDEEstimator
from repro.core.errors import InvalidParameterError, NotFittedError
from repro.core.kde import KDESelectivityEstimator
from repro.data.generators import zipf_table
from repro.engine.executor import evaluate_estimator
from repro.engine.table import Table
from repro.workload.generators import UniformWorkload
from repro.workload.queries import RangeQuery


class TestConstruction:
    def test_invalid_sensitivity_raises(self) -> None:
        with pytest.raises(InvalidParameterError):
            AdaptiveKDEEstimator(sensitivity=2.0)

    def test_invalid_max_factor_raises(self) -> None:
        with pytest.raises(InvalidParameterError):
            AdaptiveKDEEstimator(max_factor=0.1)

    def test_local_factors_before_fit_raises(self) -> None:
        with pytest.raises(NotFittedError):
            AdaptiveKDEEstimator().local_factors


class TestLocalFactors:
    def test_factor_count_matches_sample(self, mixture_table_1d: Table) -> None:
        estimator = AdaptiveKDEEstimator(sample_size=256).fit(mixture_table_1d)
        assert estimator.local_factors.shape == (256,)

    def test_factors_positive_and_clipped(self, mixture_table_1d: Table) -> None:
        estimator = AdaptiveKDEEstimator(sample_size=256, max_factor=2.5).fit(mixture_table_1d)
        factors = estimator.local_factors
        assert np.all(factors > 0)
        assert np.all(factors <= 2.5 + 1e-9)
        assert np.all(factors >= 1 / 2.5 - 1e-9)

    def test_zero_sensitivity_matches_fixed_kde(self, mixture_table_1d: Table) -> None:
        adaptive = AdaptiveKDEEstimator(sample_size=300, sensitivity=0.0, seed=1).fit(
            mixture_table_1d
        )
        fixed = KDESelectivityEstimator(sample_size=300, seed=1).fit(mixture_table_1d)
        np.testing.assert_allclose(adaptive.local_factors, 1.0)
        query = RangeQuery({"x0": (0.0, 3.0)})
        assert adaptive.estimate(query) == pytest.approx(fixed.estimate(query), abs=1e-9)

    def test_sparse_tail_points_get_wider_kernels(self) -> None:
        table = zipf_table(10_000, dimensions=1, theta=1.5, seed=3)
        estimator = AdaptiveKDEEstimator(sample_size=500, max_factor=5.0, seed=0).fit(table)
        points = estimator.sample_points[:, 0]
        factors = estimator.local_factors
        # Points in the dense head (below the median) should on average get
        # tighter kernels than points in the sparse tail.
        median = float(np.median(points))
        head = factors[points <= median]
        tail = factors[points > median]
        assert head.mean() < tail.mean()


class TestEstimates:
    def test_estimates_are_valid_fractions(self, mixture_table_2d: Table, workload_2d) -> None:
        estimator = AdaptiveKDEEstimator(sample_size=256).fit(mixture_table_2d)
        for query in workload_2d:
            assert 0.0 <= estimator.estimate(query) <= 1.0

    def test_full_domain_close_to_one(self, mixture_table_1d: Table) -> None:
        estimator = AdaptiveKDEEstimator(sample_size=400).fit(mixture_table_1d)
        low, high = mixture_table_1d.domain()["x0"]
        assert estimator.estimate(RangeQuery({"x0": (low, high)})) == pytest.approx(1.0, abs=0.05)

    def test_adaptive_beats_fixed_on_skewed_data(self) -> None:
        table = zipf_table(30_000, dimensions=1, theta=1.2, seed=11)
        workload = UniformWorkload(table, volume_fraction=0.05, seed=12).generate(150)
        adaptive = AdaptiveKDEEstimator(sample_size=512, seed=0).fit(table)
        fixed = KDESelectivityEstimator(sample_size=512, seed=0).fit(table)
        adaptive_error = evaluate_estimator(table, adaptive, workload).mean_q_error()
        fixed_error = evaluate_estimator(table, fixed, workload).mean_q_error()
        assert adaptive_error <= fixed_error * 1.05

    def test_memory_accounts_for_factors(self, mixture_table_1d: Table) -> None:
        adaptive = AdaptiveKDEEstimator(sample_size=200, seed=0).fit(mixture_table_1d)
        fixed = KDESelectivityEstimator(sample_size=200, seed=0).fit(mixture_table_1d)
        assert adaptive.memory_bytes() > fixed.memory_bytes()

    def test_density_integrates_to_one(self, mixture_table_1d: Table) -> None:
        estimator = AdaptiveKDEEstimator(sample_size=300).fit(mixture_table_1d)
        low, high = mixture_table_1d.domain()["x0"]
        grid = np.linspace(low - 5, high + 5, 1000).reshape(-1, 1)
        density = estimator.density(grid)
        assert np.all(density >= 0)
        integral = np.trapezoid(density, dx=float(grid[1, 0] - grid[0, 0]))
        assert integral == pytest.approx(1.0, abs=0.05)

    def test_density_dimension_mismatch_raises(self, mixture_table_2d: Table) -> None:
        estimator = AdaptiveKDEEstimator(sample_size=100).fit(mixture_table_2d)
        with pytest.raises(InvalidParameterError):
            estimator.density(np.zeros((3, 5)))

    def test_registry_name(self) -> None:
        assert AdaptiveKDEEstimator.name == "adaptive_kde"
