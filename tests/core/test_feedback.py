"""Unit tests for the query-feedback self-tuning estimator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import InvalidParameterError, NotFittedError
from repro.core.feedback import FeedbackAdaptiveEstimator, FeedbackRecord
from repro.core.kde import KDESelectivityEstimator
from repro.data.generators import gaussian_mixture_table
from repro.engine.executor import evaluate_estimator
from repro.engine.table import Table
from repro.workload.generators import SkewedWorkload
from repro.workload.queries import RangeQuery


@pytest.fixture(scope="module")
def table() -> Table:
    return gaussian_mixture_table(8000, dimensions=2, components=4, separation=4.0, seed=21)


@pytest.fixture()
def fitted(table: Table) -> FeedbackAdaptiveEstimator:
    estimator = FeedbackAdaptiveEstimator(
        base=KDESelectivityEstimator(sample_size=256, seed=0), max_regions=64
    )
    return estimator.fit(table)


class TestConstruction:
    def test_invalid_parameters(self) -> None:
        with pytest.raises(InvalidParameterError):
            FeedbackAdaptiveEstimator(learning_rate=1.5)
        with pytest.raises(InvalidParameterError):
            FeedbackAdaptiveEstimator(max_regions=0)
        with pytest.raises(InvalidParameterError):
            FeedbackAdaptiveEstimator(recency_halflife=0)
        with pytest.raises(InvalidParameterError):
            FeedbackAdaptiveEstimator(bias_learning_rate=-0.1)

    def test_feedback_before_fit_raises(self) -> None:
        with pytest.raises(NotFittedError):
            FeedbackAdaptiveEstimator().feedback(RangeQuery({"x0": (0, 1)}), 0.5)

    def test_default_base_is_kde(self) -> None:
        assert isinstance(FeedbackAdaptiveEstimator().base, KDESelectivityEstimator)


class TestFeedbackBehaviour:
    def test_no_feedback_matches_base(self, table: Table, fitted: FeedbackAdaptiveEstimator) -> None:
        query = RangeQuery({"x0": (0.0, 3.0), "x1": (0.0, 3.0)})
        assert fitted.estimate(query) == pytest.approx(fitted.base.estimate(query), rel=1e-9)

    def test_exact_repeat_query_moves_towards_truth(
        self, table: Table, fitted: FeedbackAdaptiveEstimator
    ) -> None:
        query = RangeQuery({"x0": (0.0, 2.0), "x1": (0.0, 2.0)})
        truth = table.true_selectivity(query)
        before = abs(fitted.estimate(query) - truth)
        fitted.feedback(query, truth)
        after = abs(fitted.estimate(query) - truth)
        assert after <= before + 1e-12

    def test_feedback_count_and_record_bound(self, table: Table) -> None:
        estimator = FeedbackAdaptiveEstimator(
            base=KDESelectivityEstimator(sample_size=128), max_regions=10
        ).fit(table)
        workload = SkewedWorkload(table, volume_fraction=0.1, seed=1).generate(25)
        for query in workload:
            estimator.feedback(query, table.true_selectivity(query))
        assert estimator.feedback_count == 25
        assert estimator.record_count <= 10

    def test_invalid_truth_raises(self, fitted: FeedbackAdaptiveEstimator) -> None:
        with pytest.raises(InvalidParameterError):
            fitted.feedback(RangeQuery({"x0": (0, 1), "x1": (0, 1)}), 1.5)

    def test_memory_grows_with_records(self, table: Table, fitted: FeedbackAdaptiveEstimator) -> None:
        before = fitted.memory_bytes()
        query = RangeQuery({"x0": (0.0, 1.0), "x1": (0.0, 1.0)})
        fitted.feedback(query, table.true_selectivity(query))
        assert fitted.memory_bytes() > before

    def test_feedback_improves_hot_region_accuracy(self, table: Table) -> None:
        hot = SkewedWorkload(
            table, volume_fraction=0.1, hot_fraction=0.25, hot_probability=1.0, seed=3
        )
        feedback_queries = hot.generate(150)
        holdout = SkewedWorkload(
            table, volume_fraction=0.1, hot_fraction=0.25, hot_probability=1.0, seed=4
        ).generate(60)
        estimator = FeedbackAdaptiveEstimator(
            base=KDESelectivityEstimator(sample_size=128, seed=0), max_regions=256
        ).fit(table)
        before = evaluate_estimator(table, estimator, holdout).mean_q_error()
        for query in feedback_queries:
            estimator.feedback(query, table.true_selectivity(query))
        after = evaluate_estimator(table, estimator, holdout).mean_q_error()
        assert after <= before

    def test_estimates_remain_valid_fractions(self, table: Table, fitted) -> None:
        workload = SkewedWorkload(table, volume_fraction=0.15, seed=5).generate(40)
        for query in workload:
            fitted.feedback(query, table.true_selectivity(query))
        for query in workload:
            assert 0.0 <= fitted.estimate(query) <= 1.0

    def test_bias_correction_counteracts_systematic_error(self, table: Table) -> None:
        # Feed back "empty" truths for regions the base model thinks are
        # populated: the global bias correction must learn a positive log-bias
        # and scale down the estimate of a fresh, disjoint query.
        estimator = FeedbackAdaptiveEstimator(
            base=KDESelectivityEstimator(sample_size=256, seed=0),
            bias_learning_rate=0.3,
            learning_rate=1.0,
        ).fit(table)
        domain = table.domain()
        (x_low, x_high), (y_low, y_high) = domain["x0"], domain["x1"]
        x_step = (x_high - x_low) / 12
        feedback_queries = [
            RangeQuery({"x0": (x_low + i * x_step, x_low + (i + 1) * x_step), "x1": (y_low, y_high)})
            for i in range(8)
        ]
        for query in feedback_queries:
            estimator.feedback(query, 0.0)  # pretend these slices are empty
        fresh = RangeQuery(
            {"x0": (x_low + 10 * x_step, x_low + 11 * x_step), "x1": (y_low, y_high)}
        )
        assert estimator._log_bias > 0
        assert estimator.estimate(fresh) < estimator.base.estimate(fresh)


class TestFeedbackRecord:
    def test_log_ratio_sign(self) -> None:
        lows = np.zeros(1)
        highs = np.ones(1)
        underestimate = FeedbackRecord(lows, highs, true_fraction=0.5, base_estimate=0.1)
        overestimate = FeedbackRecord(lows, highs, true_fraction=0.1, base_estimate=0.5)
        assert underestimate.log_ratio > 0
        assert overestimate.log_ratio < 0

    def test_registry_name(self) -> None:
        assert FeedbackAdaptiveEstimator.name == "feedback_ade"
