"""Traffic simulator: determinism, tenant isolation of draws, instrumentation."""

from __future__ import annotations

import copy

import pytest

from repro.core.errors import InvalidParameterError
from repro.core.streaming import StreamingADE
from repro.data.generators import gaussian_mixture_table, mixed_type_table
from repro.obs.metrics import MetricsRegistry
from repro.serve.server import EstimatorServer
from repro.traffic import DEFAULT_TENANTS, TenantProfile, TrafficSimulator


@pytest.fixture(scope="module")
def table():
    return gaussian_mixture_table(rows=4000, dimensions=2, components=3, seed=17)


@pytest.fixture(scope="module")
def base_model(table):
    return StreamingADE(max_kernels=64).fit(table)


def make_server(base_model, metrics=None):
    return EstimatorServer(
        copy.deepcopy(base_model), cache_size=16, metrics=metrics
    )


TENANTS = (
    TenantProfile(name="reader", rate=120.0, plan_pool=8, zipf_s=1.1, burstiness=2.0),
    TenantProfile(
        name="writer", query_weight=0.3, ingest_weight=1.0, rate=15.0,
        plan_pool=4, ingest_rows=64,
    ),
)


class TestProfiles:
    def test_weights_normalise(self) -> None:
        q, i, p = TenantProfile(name="t", query_weight=3, ingest_weight=1).op_weights
        assert (q, i, p) == (0.75, 0.25, 0.0)

    def test_describe_is_jsonable(self) -> None:
        desc = DEFAULT_TENANTS[0].describe()
        assert desc["name"] == "dashboard"
        assert isinstance(desc["rate"], float)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": ""},
            {"name": "t", "query_weight": 0, "ingest_weight": 0, "publish_weight": 0},
            {"name": "t", "rate": 0},
            {"name": "t", "burstiness": 0.5},
            {"name": "t", "burst_fraction": 1.0},
            {"name": "t", "plan_pool": 0},
            {"name": "t", "volume_fraction": 0.0},
            {"name": "t", "ingest_rows": 0},
        ],
    )
    def test_invalid_profiles_rejected(self, kwargs) -> None:
        with pytest.raises(InvalidParameterError):
            TenantProfile(**kwargs)


class TestSchedule:
    def test_same_seed_same_schedule(self, base_model, table) -> None:
        sim_a = TrafficSimulator(make_server(base_model), table, TENANTS, seed=5)
        sim_b = TrafficSimulator(make_server(base_model), table, TENANTS, seed=5)
        assert sim_a.schedule(0.5) == sim_b.schedule(0.5)

    def test_schedule_is_repeatable_on_one_simulator(self, base_model, table) -> None:
        sim = TrafficSimulator(make_server(base_model), table, TENANTS, seed=5)
        assert sim.schedule(0.5) == sim.schedule(0.5)

    def test_different_seeds_differ(self, base_model, table) -> None:
        sim_a = TrafficSimulator(make_server(base_model), table, TENANTS, seed=5)
        sim_b = TrafficSimulator(make_server(base_model), table, TENANTS, seed=6)
        assert sim_a.schedule(0.5) != sim_b.schedule(0.5)

    def test_tenant_schedule_independent_of_other_tenants(
        self, base_model, table
    ) -> None:
        """Tenant draws hang off (seed, index): adding a tenant after the
        victim leaves the victim's schedule untouched — the property the
        isolation benchmark's baseline/storm comparison rests on."""
        solo = TrafficSimulator(make_server(base_model), table, TENANTS[:1], seed=9)
        both = TrafficSimulator(make_server(base_model), table, TENANTS, seed=9)
        solo_events = [e for e in solo.schedule(0.5) if e.tenant == "reader"]
        both_events = [e for e in both.schedule(0.5) if e.tenant == "reader"]
        assert solo_events == both_events

    def test_time_ordered(self, base_model, table) -> None:
        events = TrafficSimulator(make_server(base_model), table, TENANTS, seed=5).schedule(0.5)
        assert events == sorted(events, key=lambda e: (e.time, e.tenant))

    def test_duration_validated(self, base_model, table) -> None:
        with pytest.raises(InvalidParameterError):
            TrafficSimulator(make_server(base_model), table, TENANTS, seed=5).schedule(0.0)

    def test_duplicate_tenant_names_rejected(self, base_model, table) -> None:
        dup = (TENANTS[0], TENANTS[0])
        with pytest.raises(InvalidParameterError):
            TrafficSimulator(make_server(base_model), table, dup, seed=5)

    def test_empty_tenants_rejected(self, base_model, table) -> None:
        with pytest.raises(InvalidParameterError):
            TrafficSimulator(make_server(base_model), table, (), seed=5)


class TestRun:
    def test_same_seed_same_checksum(self, base_model, table) -> None:
        r1 = TrafficSimulator(make_server(base_model), table, TENANTS, seed=3).run(0.4)
        r2 = TrafficSimulator(make_server(base_model), table, TENANTS, seed=3).run(0.4)
        assert r1.events == r2.events
        assert r1.checksum == pytest.approx(r2.checksum)

    def test_per_tenant_histograms_populated(self, base_model, table) -> None:
        metrics = MetricsRegistry()
        sim = TrafficSimulator(
            make_server(base_model), table, TENANTS, seed=3, metrics=metrics
        )
        report = sim.run(0.4)
        reader = report.tenants["reader"]
        assert reader["ops"]["query"]["count"] > 0
        assert 0 < reader["p50"] <= reader["p99"]
        hist = metrics.histogram("traffic.op_seconds", tenant="reader", op="query")
        assert hist.count == reader["ops"]["query"]["count"]

    def test_ingest_bumps_generation_and_rows(self, base_model, table) -> None:
        server = make_server(base_model)
        report = TrafficSimulator(server, table, TENANTS, seed=3).run(0.4)
        writes = report.tenants["writer"]["ops"].get("ingest", {}).get("count", 0)
        assert writes > 0
        assert report.server["generation"] == 1 + writes
        assert report.server["rows_modelled"] > base_model.row_count

    def test_uses_server_registry_when_enabled(self, base_model, table) -> None:
        metrics = MetricsRegistry()
        server = make_server(base_model, metrics=metrics)
        sim = TrafficSimulator(server, table, TENANTS, seed=3)
        assert sim.metrics is metrics
        sim.run(0.3)
        # server-side per-tenant request series share the same registry
        assert metrics.histogram("serve.request_seconds", tenant="reader").count > 0

    def test_typed_tenant_runs_on_schema_table(self) -> None:
        typed_table = mixed_type_table(rows=2000, seed=23)
        model = StreamingADE(max_kernels=32).fit(typed_table)
        server = EstimatorServer(model, cache_size=8)
        tenants = (
            TenantProfile(name="typed", rate=60.0, plan_pool=4, typed=True),
        )
        report = TrafficSimulator(server, typed_table, tenants, seed=2).run(0.3)
        assert report.tenants["typed"]["ops"]["query"]["count"] > 0


class TestReportExport:
    def test_round_trips_through_both_exporters(self, base_model, table, tmp_path) -> None:
        metrics = MetricsRegistry()
        sim = TrafficSimulator(
            make_server(base_model), table, TENANTS, seed=3, metrics=metrics
        )
        report = sim.run(0.3)
        for suffix in (".json", ".jsonl"):
            path = report.export(tmp_path / f"run{suffix}", metrics=metrics)
            from repro.obs.export import exporter_for_path

            loaded = exporter_for_path(path).load(path)
            assert loaded["checksum"] == pytest.approx(report.checksum)
            assert loaded["histograms"]  # registry snapshot rode along


class TestClosedLoop:
    """Collector ticking and admission gating inside the simulated run."""

    def make_gated(self, base_model, *, slo=1e-9, floor=0.4):
        from repro.obs.collector import TelemetryCollector
        from repro.serve import AdmissionController, TenantQuota

        metrics = MetricsRegistry()
        collector = TelemetryCollector(metrics, interval=0.1)
        controller = AdmissionController(
            [TenantQuota("reader", slo_p99=slo)],
            window=0.5,
            floor=floor,
            initial_allowance=floor,
            metrics=metrics,
        ).bind(collector)
        server = EstimatorServer(
            copy.deepcopy(base_model), cache_size=16, metrics=metrics,
            admission=controller,
        )
        return server, collector, controller, metrics

    def test_collector_ticks_on_virtual_time(self, base_model, table) -> None:
        from repro.obs.collector import TelemetryCollector

        metrics = MetricsRegistry()
        collector = TelemetryCollector(metrics, interval=0.1)
        sim = TrafficSimulator(
            make_server(base_model, metrics=metrics), table, TENANTS,
            seed=3, collector=collector,
        )
        sim.run(0.45)
        assert collector.last_tick == 0.45  # final partial-interval tick
        times = {p.time for p in collector.store}
        assert {0.1, 0.2, 0.3, 0.4} <= times
        assert any(
            key.startswith("traffic.ops") for key in collector.store.keys()
        )

    def test_impossible_slo_sheds_writer_ops(self, base_model, table) -> None:
        server, collector, controller, metrics = self.make_gated(base_model)
        sim = TrafficSimulator(server, table, TENANTS, seed=3, collector=collector)
        report = sim.run(0.5)
        writer = report.tenants["writer"]
        assert writer["rejected"] and sum(writer["rejected"].values()) > 0
        assert 0.0 < writer["goodput"] < 1.0
        assert report.tenants["reader"]["goodput"] == 1.0  # protected, untouched
        assert controller.write_allowance == pytest.approx(0.4)  # pinned at floor
        shed = sum(
            entry["value"]
            for key, entry in metrics.snapshot()["counters"].items()
            if key.startswith("traffic.rejected")
        )
        assert shed == sum(writer["rejected"].values())
        assert report.admission["slo"]["reader"]["breach"] is True
        assert report.to_payload()["admission"]["write_allowance"] == pytest.approx(0.4)

    def test_shed_runs_are_deterministic(self, base_model, table) -> None:
        def run():
            server, collector, _, _ = self.make_gated(base_model)
            sim = TrafficSimulator(server, table, TENANTS, seed=3, collector=collector)
            report = sim.run(0.5)
            return report.checksum, report.tenants["writer"]["rejected"]

        first, second = run(), run()
        assert first[0] == pytest.approx(second[0])
        assert first[1] == second[1]

    def test_ungated_report_has_full_goodput(self, base_model, table) -> None:
        report = TrafficSimulator(
            make_server(base_model), table, TENANTS, seed=3
        ).run(0.3)
        assert report.tenants["writer"]["goodput"] == 1.0
        assert "rejected" not in report.tenants["writer"]
        assert report.admission == {}
