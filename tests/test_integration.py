"""Integration tests: several subsystems working together end to end."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import (
    AdaptiveKDEEstimator,
    Catalog,
    EquiDepthHistogram,
    Executor,
    FeedbackAdaptiveEstimator,
    IndependenceEstimator,
    JoinSpec,
    KDESelectivityEstimator,
    Optimizer,
    RangeQuery,
    ReservoirSamplingEstimator,
    SkewedWorkload,
    StreamingADE,
    Table,
    UniformWorkload,
    evaluate_estimator,
    gaussian_mixture_table,
    plan_regret,
    sudden_drift_stream,
    uniform_table,
    zipf_table,
)


class TestPublicApi:
    def test_version_and_exports(self) -> None:
        assert repro.__version__
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_registry_covers_all_synopses(self) -> None:
        assert len(repro.available_estimators()) >= 12


class TestEndToEndAccuracy:
    """At realistic scale the adaptive estimators must beat the weak baselines."""

    def test_streaming_ade_beats_avi_on_correlated_data(self) -> None:
        table = repro.correlated_table(20_000, dimensions=2, correlation=0.85, seed=61)
        workload = UniformWorkload(table, volume_fraction=0.25, seed=62).generate(150)
        ade = StreamingADE(max_kernels=256).fit(table)
        avi = EquiDepthHistogram(buckets=64).fit(table)
        ade_error = evaluate_estimator(table, ade, workload).mean_q_error()
        avi_error = evaluate_estimator(table, avi, workload).mean_q_error()
        assert ade_error < avi_error

    def test_adaptive_kde_beats_independence_on_mixture(self) -> None:
        table = gaussian_mixture_table(20_000, dimensions=2, components=4, separation=4.0, seed=63)
        workload = UniformWorkload(table, volume_fraction=0.15, seed=64).generate(100)
        ade = AdaptiveKDEEstimator(sample_size=512, bandwidth_rule="lscv").fit(table)
        avi = IndependenceEstimator().fit(table)
        assert (
            evaluate_estimator(table, ade, workload).mean_q_error()
            < evaluate_estimator(table, avi, workload).mean_q_error()
        )

    def test_all_estimators_reasonable_on_uniform_data(self) -> None:
        table = uniform_table(30_000, dimensions=1, seed=65)
        workload = UniformWorkload(table, volume_fraction=0.2, seed=66).generate(80)
        for name in repro.available_estimators():
            kwargs = {"max_kernels": 128} if name == "streaming_ade" else {}
            estimator = repro.create_estimator(name, **kwargs)
            estimator.fit(table)
            result = evaluate_estimator(table, estimator, workload)
            # Uniform 1-D data is the easy case: every synopsis should achieve
            # a mean q-error well under 2.
            assert result.mean_q_error() < 2.0, name


class TestStreamingPipeline:
    def test_stream_feeds_estimator_and_table_consistently(self) -> None:
        stream = sudden_drift_stream(dimensions=2, batch_size=200, batches=20, seed=67)
        estimator = StreamingADE(max_kernels=128, decay=0.999).start(stream.column_names)
        reservoir = ReservoirSamplingEstimator(sample_size=256, decay=True).start(
            stream.column_names
        )
        table = Table("stream", {name: np.array([]) for name in stream.column_names})
        for batch in stream:
            estimator.insert(batch)
            reservoir.insert(batch)
            table.append_matrix(batch, stream.column_names)
        assert table.row_count == stream.total_rows
        assert estimator.row_count == stream.total_rows
        workload = UniformWorkload(table, volume_fraction=0.3, seed=68).generate(40)
        for estimator_under_test in (estimator, reservoir):
            result = evaluate_estimator(table, estimator_under_test, workload)
            assert np.all(result.estimates >= 0.0)
            assert np.all(result.estimates <= 1.0)

    def test_streaming_matches_batch_fit(self) -> None:
        table = gaussian_mixture_table(10_000, dimensions=1, components=3, seed=69)
        streamed = StreamingADE(max_kernels=128, seed=0).start(["x0"])
        for start in range(0, table.row_count, 1000):
            streamed.insert(table.column("x0")[start : start + 1000].reshape(-1, 1))
        batch = StreamingADE(max_kernels=128, seed=0).fit(table)
        query = RangeQuery({"x0": (0.0, 4.0)})
        assert streamed.estimate(query) == pytest.approx(batch.estimate(query), abs=1e-9)


class TestFeedbackLoop:
    def test_executor_feedback_improves_workload_accuracy(self) -> None:
        table = gaussian_mixture_table(15_000, dimensions=2, components=4, separation=4.0, seed=70)
        executor = Executor(table)
        estimator = FeedbackAdaptiveEstimator(
            base=KDESelectivityEstimator(sample_size=256, seed=0), max_regions=512
        ).fit(table)
        hot = SkewedWorkload(
            table, volume_fraction=0.1, hot_probability=1.0, hot_fraction=0.3, seed=71
        )
        train = hot.generate(200)
        holdout = SkewedWorkload(
            table, volume_fraction=0.1, hot_probability=1.0, hot_fraction=0.3, seed=72
        ).generate(80)
        before = evaluate_estimator(table, estimator, holdout).mean_q_error()
        executor.run_workload(train, estimator, feedback=True)
        after = evaluate_estimator(table, estimator, holdout).mean_q_error()
        assert after <= before * 1.05
        assert estimator.feedback_count == 200


class TestCatalogOptimizerIntegration:
    def test_better_statistics_never_hurt_plan_quality(self) -> None:
        fact = gaussian_mixture_table(
            40_000, dimensions=1, components=4, separation=5.0, seed=73, name="fact",
            column_names=["amount"],
        )
        dim_a = zipf_table(4000, dimensions=1, theta=1.2, seed=74, name="dim_a", column_names=["a"])
        dim_b = uniform_table(1000, dimensions=1, seed=75, name="dim_b", column_names=["b"])
        spec = JoinSpec(
            tables=("fact", "dim_a", "dim_b"),
            filters={
                "fact": RangeQuery({"amount": (0.0, 2.0)}),
                "dim_a": RangeQuery({"a": (0.0, 50.0)}),
                "dim_b": RangeQuery({"b": (0.0, 0.2)}),
            },
            join_selectivities={
                frozenset(("fact", "dim_a")): 1 / 4000,
                frozenset(("fact", "dim_b")): 1 / 1000,
                frozenset(("dim_a", "dim_b")): 1.0,
            },
        )

        def regret_with(estimator_factory) -> float:
            catalog = Catalog()
            for table in (fact, dim_a, dim_b):
                catalog.add_table(table)
                if estimator_factory is not None:
                    catalog.attach_estimator(table.name, estimator_factory())
            return plan_regret(Optimizer(catalog), spec)

        exact = regret_with(None)
        with_kde = regret_with(lambda: AdaptiveKDEEstimator(sample_size=512))
        assert exact == pytest.approx(1.0)
        assert with_kde >= 1.0 - 1e-9
        # A well-fed synopsis should essentially recover the optimal plan here.
        assert with_kde < 2.0


class TestExperimentHarness:
    def test_run_experiment_returns_renderable_results(self) -> None:
        from repro.experiments import run_experiment

        table_result = run_experiment("table1", rows=2000, queries=20, budget_bytes=2048)
        assert table_result.rows
        assert "Table 1" in table_result.render()
        series_result = run_experiment("fig4", rows=2000, queries=20, thetas=(0.0, 1.0))
        assert series_result.series
        assert len(series_result.x_values) == 2

    def test_unknown_experiment_raises(self) -> None:
        from repro.experiments import run_experiment

        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_experiment_registry_complete(self) -> None:
        from repro.experiments import EXPERIMENTS

        expected = {f"table{i}" for i in range(1, 5)} | {f"fig{i}" for i in range(1, 9)}
        assert expected == set(EXPERIMENTS)
