"""The mergeable-synopsis protocol on the estimator ABC.

Exact-merge estimators (histogram family) must reproduce a monolithic fit
bitwise when their shards are built against a common frame; lossless moment
merges (independence) agree to float rounding; sample merges are pinned
statistically; and the row-count-weighted ``combine_estimates`` fallback is
checked against its closed form.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import (
    DimensionMismatchError,
    InvalidParameterError,
    NotFittedError,
)
from repro.core.estimator import (
    SelectivityEstimator,
    available_estimators,
    create_estimator,
)
from repro.engine.table import Table
from repro.shard.partition import HashPartitioner, partition_table
from repro.workload.queries import compile_queries

EXACT_MERGE = ["equiwidth", "equidepth", "grid"]
LOSSLESS_MERGE = EXACT_MERGE + ["independence"]
SAMPLE_MERGE = ["sampling", "reservoir_sampling"]

_FAST_KWARGS = {
    "grid": {"cells_per_dim": 8},
    "sampling": {"sample_size": 256},
    "reservoir_sampling": {"sample_size": 256},
}


def _shard_tables(table: Table, shards: int = 4) -> list[Table]:
    return partition_table(table, HashPartitioner(shards), table.column_names)


def _merged_vs_monolithic(name: str, table: Table):
    kwargs = _FAST_KWARGS.get(name, {})
    monolithic = create_estimator(name, **kwargs).fit(table)
    template = create_estimator(name, **kwargs)
    frame = template.shard_frame(table, table.column_names)
    shards = [
        create_estimator(name, **kwargs).fit_shard(sub, table.column_names, frame)
        for sub in _shard_tables(table)
    ]
    merged = create_estimator(name, **kwargs).merge_state(shards)
    return monolithic, merged


class TestMergeClassification:
    def test_declared_merge_classes(self) -> None:
        for name in available_estimators():
            estimator = create_estimator(name)
            if name in LOSSLESS_MERGE:
                assert estimator.supports_merge and estimator.merge_lossless, name
            if name in EXACT_MERGE:
                assert estimator.merge_exact, name
            if name in SAMPLE_MERGE:
                assert estimator.supports_merge, name
                assert not estimator.merge_lossless, name
            if estimator.merge_exact:
                assert estimator.merge_lossless, name  # exact implies lossless
            if estimator.merge_lossless:
                assert estimator.supports_merge, name

    def test_unsupported_merge_raises(self, mixture_table_2d) -> None:
        shards = [
            create_estimator("kde", sample_size=50).fit(sub)
            for sub in _shard_tables(mixture_table_2d, 2)
        ]
        with pytest.raises(InvalidParameterError, match="state-merge"):
            create_estimator("kde", sample_size=50).merge_state(shards)


@pytest.mark.parametrize("name", EXACT_MERGE)
class TestExactMerge:
    def test_merged_equals_monolithic_bitwise(
        self, name: str, mixture_table_2d, workload_2d
    ) -> None:
        monolithic, merged = _merged_vs_monolithic(name, mixture_table_2d)
        plan = compile_queries(workload_2d, monolithic.columns)
        np.testing.assert_array_equal(
            merged.estimate_batch(plan), monolithic.estimate_batch(plan)
        )
        assert merged.row_count == monolithic.row_count
        assert merged.memory_bytes() == monolithic.memory_bytes()

    def test_merge_without_common_frame_rejected(
        self, name: str, mixture_table_2d
    ) -> None:
        # Shards fitted without a shared frame derive their own layouts;
        # merging them silently would corrupt counts.
        kwargs = _FAST_KWARGS.get(name, {})
        shards = [
            create_estimator(name, **kwargs).fit(sub)
            for sub in _shard_tables(mixture_table_2d, 2)
        ]
        with pytest.raises(InvalidParameterError, match="frame"):
            create_estimator(name, **kwargs).merge_state(shards)


class TestLosslessMerge:
    def test_independence_moments_recombine(self, mixture_table_2d, workload_2d) -> None:
        monolithic, merged = _merged_vs_monolithic("independence", mixture_table_2d)
        plan = compile_queries(workload_2d, monolithic.columns)
        np.testing.assert_allclose(
            merged.estimate_batch(plan),
            monolithic.estimate_batch(plan),
            rtol=1e-9,
            atol=1e-12,
        )


@pytest.mark.parametrize("name", SAMPLE_MERGE)
class TestSampleMerge:
    def test_merged_sample_estimates_the_same_distribution(
        self, name: str, mixture_table_2d, workload_2d
    ) -> None:
        monolithic, merged = _merged_vs_monolithic(name, mixture_table_2d)
        plan = compile_queries(workload_2d, monolithic.columns)
        truths = mixture_table_2d.true_selectivities(plan)
        errors = np.abs(merged.estimate_batch(plan) - truths)
        # The merged sample is one more m-row uniform sample: its error stays
        # within a few standard errors of sampling noise.
        m = _FAST_KWARGS[name]["sample_size"]
        noise = np.sqrt(np.maximum(truths * (1 - truths), 0.25 / m) / m)
        assert (errors <= 5 * noise + 1e-9).mean() >= 0.9
        assert errors.mean() <= 3 * noise.mean()

    def test_merged_sample_respects_capacity_and_rows(
        self, name: str, mixture_table_2d
    ) -> None:
        _, merged = _merged_vs_monolithic(name, mixture_table_2d)
        assert merged.row_count == mixture_table_2d.row_count
        assert merged.memory_bytes() > 0


class TestMergeValidation:
    def test_empty_merge_rejected(self) -> None:
        with pytest.raises(InvalidParameterError):
            create_estimator("equiwidth").merge_state([])

    def test_cross_estimator_merge_rejected(self, small_table) -> None:
        shard = create_estimator("equidepth").fit(small_table)
        with pytest.raises(InvalidParameterError):
            create_estimator("equiwidth").merge_state([shard])

    def test_unfitted_shard_rejected(self) -> None:
        with pytest.raises(NotFittedError):
            create_estimator("equiwidth").merge_state([create_estimator("equiwidth")])

    def test_column_mismatch_rejected(self, small_table, mixture_table_2d) -> None:
        a = create_estimator("equiwidth").fit(small_table)
        b = create_estimator("equiwidth").fit(mixture_table_2d)
        with pytest.raises(DimensionMismatchError):
            create_estimator("equiwidth").merge_state([a, b])


class TestCombineEstimates:
    def test_weighted_average_closed_form(self) -> None:
        estimates = np.array([[0.2, 0.4], [0.6, 0.0], [1.0, 1.0]])
        weights = np.array([1.0, 3.0, 0.0])
        np.testing.assert_allclose(
            SelectivityEstimator.combine_estimates(estimates, weights),
            [(0.2 + 3 * 0.6) / 4.0, (0.4 + 0.0) / 4.0],
        )

    def test_all_empty_shards_estimate_zero(self) -> None:
        result = SelectivityEstimator.combine_estimates(
            np.array([[0.5, 0.5]]), np.array([0.0])
        )
        np.testing.assert_array_equal(result, [0.0, 0.0])

    def test_shape_mismatch_rejected(self) -> None:
        with pytest.raises(InvalidParameterError):
            SelectivityEstimator.combine_estimates(
                np.ones((2, 3)), np.array([1.0, 2.0, 3.0])
            )
