"""ShardedEstimator acceptance suite.

The headline guarantee (see :mod:`repro.shard`): for **every** registered
estimator, ``ShardedEstimator(est, shards=k)`` matches the monolithic
estimator within its merge class's documented tolerance on the standard
workload —

* bitwise for the exact state-merge family (``equiwidth``, ``equidepth``,
  ``grid``) and to float rounding for ``independence``;
* for the weighted-combine family, mean relative deviation (selectivities
  floored at 0.05) within :data:`WEIGHTED_TOLERANCE`.

Plus the front-end mechanics: insert routing (batch-invariant), flush,
per-shard refresh, copy-on-write shard swap, parallel-backend equivalence
and catalog integration.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import (
    CatalogError,
    DimensionMismatchError,
    InvalidParameterError,
    StreamError,
)
from repro.core.estimator import available_estimators, create_estimator
from repro.engine.catalog import Catalog
from repro.engine.table import Table
from repro.shard.sharded import ShardedEstimator
from repro.workload.generators import UniformWorkload
from repro.workload.queries import compile_queries

ALL_BASES = sorted(n for n in available_estimators() if n != "sharded")

#: Constructor overrides: default synopsis budgets on the standard table.
_BASE_KWARGS: dict[str, dict] = {
    "streaming_ade": {"max_kernels": 128},
}

#: Documented tolerance of the weighted-combine path: mean relative
#: deviation from the monolithic estimator with selectivities floored at
#: 0.05.  The KDE/ADE family stays within 5 %; the self-tuning histogram's
#: initial structure is data-derived per shard and is pinned at 8 %; the
#: samplers additionally carry O(sqrt(p(1-p)/m)) sampling noise.
WEIGHTED_TOLERANCE: dict[str, float] = {
    "adaptive_kde": 0.05,
    "kde": 0.05,
    "feedback_ade": 0.05,
    "streaming_ade": 0.05,
    "wavelet": 0.05,
    "st_histogram": 0.08,
    "sampling": 0.08,
    "reservoir_sampling": 0.08,
    # A convex combination of its experts: its deviation is bounded by the
    # worst member family (the samplers).
    "ensemble": 0.08,
}

EXACT = {"equiwidth", "equidepth", "grid"}
ROUNDING_EXACT = {"independence"}


@pytest.fixture(scope="module")
def standard_table() -> Table:
    from repro.data.generators import gaussian_mixture_table

    return gaussian_mixture_table(
        rows=20_000, dimensions=2, components=3, separation=4.0, seed=3, name="std"
    )


@pytest.fixture(scope="module")
def standard_workload(standard_table):
    return UniformWorkload(standard_table, volume_fraction=0.2, seed=7).generate(100)


@pytest.mark.parametrize("name", ALL_BASES)
@pytest.mark.parametrize("shards", [2, 4])
def test_sharded_matches_monolithic_within_documented_tolerance(
    name: str, shards: int, standard_table, standard_workload
) -> None:
    kwargs = _BASE_KWARGS.get(name, {})
    monolithic = create_estimator(name, **kwargs).fit(standard_table)
    sharded = ShardedEstimator(
        {"name": name, **kwargs}, shards=shards, partitioner="hash", parallel="serial"
    ).fit(standard_table)
    assert sharded.row_count == monolithic.row_count
    plan = compile_queries(standard_workload, monolithic.columns)
    mono = monolithic.estimate_batch(plan)
    shard = sharded.estimate_batch(plan)
    if name in EXACT:
        np.testing.assert_array_equal(shard, mono)
    elif name in ROUNDING_EXACT:
        np.testing.assert_allclose(shard, mono, rtol=1e-9, atol=1e-12)
    else:
        deviation = (np.abs(shard - mono) / np.maximum(mono, 0.05)).mean()
        assert deviation <= WEIGHTED_TOLERANCE[name], (
            f"{name} at {shards} shards deviates {deviation:.4f} from the "
            f"monolithic estimator (documented: {WEIGHTED_TOLERANCE[name]})"
        )


class TestFrontEndContract:
    def test_registered_and_config_roundtrips(self) -> None:
        estimator = create_estimator("sharded")
        assert isinstance(estimator, ShardedEstimator)
        clone = create_estimator("sharded", **{
            k: v for k, v in estimator.config().items() if k != "name"
        })
        assert clone.config() == estimator.config()

    def test_base_accepts_instance_name_and_config(self, small_table) -> None:
        for base in ("equiwidth", {"name": "equiwidth", "buckets": 16},
                     create_estimator("equiwidth", buckets=16)):
            estimator = ShardedEstimator(base, shards=2).fit(small_table)
            assert estimator.shard_count == 2
            assert estimator.shard(0).name == "equiwidth"

    def test_nested_sharding_rejected(self) -> None:
        with pytest.raises(InvalidParameterError, match="nested"):
            ShardedEstimator(ShardedEstimator("equiwidth"))

    def test_merge_combine_requires_mergeable_base(self) -> None:
        with pytest.raises(InvalidParameterError, match="merge"):
            ShardedEstimator("kde", combine="merge")

    def test_shard_row_counts_cover_the_table(self, mixture_table_2d) -> None:
        estimator = ShardedEstimator("equiwidth", shards=4).fit(mixture_table_2d)
        counts = estimator.shard_row_counts()
        assert counts.sum() == mixture_table_2d.row_count
        assert estimator.memory_bytes() == sum(
            s.memory_bytes() for s in estimator.shard_estimators
        )

    def test_combine_modes_agree_for_exact_bases_1d(
        self, small_table, workload_1d
    ) -> None:
        # Over a single attribute the per-shard histogram estimate is linear
        # in the bucket counts, so the row-count-weighted combine equals the
        # merged histogram.  (Over multiple attributes the AVI *product* is
        # nonlinear across columns and the two modes legitimately differ —
        # which is exactly why the exact family defaults to the merge path.)
        merged = ShardedEstimator("equiwidth", shards=4, combine="merge").fit(
            small_table
        )
        weighted = ShardedEstimator("equiwidth", shards=4, combine="weighted").fit(
            small_table
        )
        np.testing.assert_allclose(
            merged.estimate_batch(workload_1d),
            weighted.estimate_batch(workload_1d),
            atol=1e-12,
        )

    def test_parallel_backends_produce_identical_models(
        self, mixture_table_2d, workload_2d
    ) -> None:
        results = {}
        for backend in ("serial", "thread", "process"):
            estimator = ShardedEstimator(
                "equidepth", shards=4, parallel=backend
            ).fit(mixture_table_2d)
            results[backend] = estimator.estimate_batch(workload_2d)
        np.testing.assert_array_equal(results["serial"], results["thread"])
        np.testing.assert_array_equal(results["serial"], results["process"])


class TestStreamingFrontEnd:
    def test_insert_routes_and_batching_is_invariant(self, workload_2d) -> None:
        from repro.data.generators import gaussian_mixture_table

        table = gaussian_mixture_table(rows=4000, dimensions=2, seed=11)
        stream = np.random.default_rng(12).normal(0.5, 1.5, size=(900, 2))

        bulk = ShardedEstimator(
            {"name": "reservoir_sampling", "sample_size": 64},
            shards=3,
            partitioner="hash",
        ).fit(table)
        bulk.insert(stream)
        row_wise = ShardedEstimator(
            {"name": "reservoir_sampling", "sample_size": 64},
            shards=3,
            partitioner="hash",
        ).fit(table)
        for row in stream:
            row_wise.insert(row.reshape(1, -1))

        assert bulk.row_count == row_wise.row_count == 4900
        np.testing.assert_array_equal(
            bulk.estimate_batch(workload_2d), row_wise.estimate_batch(workload_2d)
        )

    def test_insert_on_non_streaming_base_raises(self, mixture_table_2d) -> None:
        estimator = ShardedEstimator("equiwidth", shards=2).fit(mixture_table_2d)
        with pytest.raises(StreamError):
            estimator.insert(np.zeros((3, 2)))

    def test_empty_insert_is_a_noop(self, mixture_table_2d) -> None:
        estimator = ShardedEstimator(
            {"name": "streaming_ade", "max_kernels": 16}, shards=2
        ).fit(mixture_table_2d)
        before = estimator.row_count
        estimator.insert(np.empty((0, 2)))
        assert estimator.row_count == before

    def test_flush_reaches_every_shard(self, mixture_table_2d, workload_2d) -> None:
        estimator = ShardedEstimator(
            {"name": "streaming_ade", "max_kernels": 16, "chunk_size": 512},
            shards=2,
        ).fit(mixture_table_2d)
        estimator.insert(np.random.default_rng(13).normal(size=(100, 2)))
        estimator.flush()
        for shard in estimator.shard_estimators:
            assert shard._pending_count == 0

    def test_width_mismatch_rejected(self, mixture_table_2d) -> None:
        estimator = ShardedEstimator(
            {"name": "streaming_ade", "max_kernels": 16}, shards=2
        ).fit(mixture_table_2d)
        with pytest.raises(DimensionMismatchError):
            estimator.insert(np.zeros((3, 5)))


class TestPerShardLifecycle:
    def test_refit_shard_only_rebuilds_one_partition(self, workload_2d) -> None:
        from repro.data.generators import gaussian_mixture_table

        table = gaussian_mixture_table(rows=6000, dimensions=2, seed=14, name="t")
        estimator = ShardedEstimator("equidepth", shards=3, partitioner="hash").fit(
            table
        )
        untouched = [estimator.shard(i) for i in (0, 2)]
        table.append_matrix(np.random.default_rng(15).normal(size=(600, 2)))
        fresh = estimator.refit_shard(1, table)
        assert estimator.shard(1) is fresh
        assert estimator.shard(0) is untouched[0]
        assert estimator.shard(2) is untouched[1]
        assert estimator.row_count == sum(estimator.shard_row_counts())
        # Frame pinned by the original fit: the refreshed shard stays
        # merge-compatible with the untouched shards.
        assert estimator.estimate_batch(workload_2d).shape == (len(workload_2d),)

    def test_round_robin_refit_uses_static_positions(self, workload_2d) -> None:
        """Regression: refitting a shard of a round-robin-partitioned model
        must re-derive the positional assignment from table position 0, not
        consume the live stream counter (which would misroute every row and
        silently shift all subsequent insert routing)."""
        from repro.data.generators import gaussian_mixture_table

        table = gaussian_mixture_table(rows=1000, dimensions=2, seed=18, name="rr")
        estimator = ShardedEstimator(
            "equiwidth", shards=4, partitioner="round_robin"
        ).fit(table)
        counts_before = estimator.shard_row_counts().copy()
        before = estimator.estimate_batch(workload_2d).copy()
        position = estimator.partitioner.position
        # Refit on the unchanged table: a pure re-derivation.
        estimator.refit_shard(2, table)
        np.testing.assert_array_equal(estimator.shard_row_counts(), counts_before)
        np.testing.assert_array_equal(estimator.estimate_batch(workload_2d), before)
        assert estimator.partitioner.position == position  # counter untouched
        assert estimator.row_count == table.row_count

    def test_with_shard_is_copy_on_write(self, mixture_table_2d, workload_2d) -> None:
        original = ShardedEstimator("equiwidth", shards=3).fit(mixture_table_2d)
        before = original.estimate_batch(workload_2d).copy()
        replacement = original.checkout_shard(1)
        clone = original.with_shard(1, replacement)
        assert clone is not original
        assert clone.shard(0) is original.shard(0)  # shared, not copied
        assert clone.shard(1) is replacement
        np.testing.assert_array_equal(original.estimate_batch(workload_2d), before)
        np.testing.assert_array_equal(clone.estimate_batch(workload_2d), before)

    def test_with_shard_validates_the_replacement(self, mixture_table_2d) -> None:
        estimator = ShardedEstimator("equiwidth", shards=2).fit(mixture_table_2d)
        with pytest.raises(InvalidParameterError):
            estimator.with_shard(0, create_estimator("kde").fit(mixture_table_2d))
        with pytest.raises(InvalidParameterError):
            estimator.with_shard(7, estimator.checkout_shard(0))


class TestCatalogIntegration:
    def test_attach_sharded_and_shard_refresh(self, workload_2d) -> None:
        from repro.data.generators import gaussian_mixture_table

        table = gaussian_mixture_table(rows=5000, dimensions=2, seed=16, name="tbl")
        catalog = Catalog()
        catalog.add_table(table)
        estimator = catalog.attach_sharded(
            "tbl", "equidepth", shards=3, partitioner="range"
        )
        assert catalog.estimator("tbl") is estimator
        estimates = catalog.estimate_batch("tbl", workload_2d)
        assert estimates.shape == (len(workload_2d),)
        table.append_matrix(np.random.default_rng(17).normal(size=(400, 2)))
        catalog.refresh("tbl", shard=0)
        assert catalog.estimator("tbl").row_count == sum(
            catalog.estimator("tbl").shard_row_counts()
        )

    def test_shard_refresh_requires_sharded_synopsis(self, mixture_table_2d) -> None:
        catalog = Catalog()
        catalog.add_table(mixture_table_2d)
        catalog.attach_estimator(mixture_table_2d.name, create_estimator("equiwidth"))
        with pytest.raises(CatalogError, match="not sharded"):
            catalog.refresh(mixture_table_2d.name, shard=0)

    def test_shard_refresh_without_synopsis_raises(self, mixture_table_2d) -> None:
        catalog = Catalog()
        catalog.add_table(mixture_table_2d)
        with pytest.raises(CatalogError):
            catalog.refresh(mixture_table_2d.name, shard=0)
