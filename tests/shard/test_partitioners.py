"""Partitioner routing contract: deterministic, total, batch-invariant.

The hypothesis-driven classes pin the satellite guarantee that routing a
bulk ``insert`` produces bitwise the same shard contents as routing the rows
one at a time — for every partitioner kind, over arbitrary batch slicings.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import InvalidParameterError
from repro.engine.table import Table
from repro.shard.partition import (
    HashPartitioner,
    Partitioner,
    RangePartitioner,
    RoundRobinPartitioner,
    make_partitioner,
    partition_table,
)

COLUMNS = ["x0", "x1"]


def _rows(n: int, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).normal(size=(n, len(COLUMNS)))


def _bound(partitioner: Partitioner, data: np.ndarray | None = None) -> Partitioner:
    table = (
        Table.from_array("t", data if data is not None else _rows(200), COLUMNS)
    )
    return partitioner.bind(COLUMNS, table)


PARTITIONER_FACTORIES = {
    "hash": lambda shards: HashPartitioner(shards),
    "range": lambda shards: RangePartitioner(shards),
    "round_robin": lambda shards: RoundRobinPartitioner(shards),
}


@pytest.mark.parametrize("kind", sorted(PARTITIONER_FACTORIES))
class TestRoutingContract:
    def test_every_row_routes_to_a_valid_shard(self, kind: str) -> None:
        partitioner = _bound(PARTITIONER_FACTORIES[kind](4))
        assignment = partitioner.assign(_rows(500, seed=1))
        assert assignment.shape == (500,)
        assert assignment.dtype == np.int64
        assert assignment.min() >= 0 and assignment.max() < 4

    def test_value_routing_is_deterministic(self, kind: str) -> None:
        rows = _rows(300, seed=2)
        first = _bound(PARTITIONER_FACTORIES[kind](4))
        second = _bound(PARTITIONER_FACTORIES[kind](4))
        np.testing.assert_array_equal(first.assign(rows), second.assign(rows))

    def test_empty_batch_is_a_noop(self, kind: str) -> None:
        partitioner = _bound(PARTITIONER_FACTORIES[kind](4))
        assert partitioner.assign(np.empty((0, 2))).shape == (0,)

    def test_single_shard_routes_everything_to_zero(self, kind: str) -> None:
        partitioner = _bound(PARTITIONER_FACTORIES[kind](1))
        assert not partitioner.assign(_rows(100)).any()

    def test_partition_table_is_a_disjoint_cover(self, kind: str) -> None:
        data = _rows(400, seed=3)
        table = Table.from_array("t", data, COLUMNS)
        shards = partition_table(table, PARTITIONER_FACTORIES[kind](4), COLUMNS)
        assert len(shards) == 4
        assert sum(s.row_count for s in shards) == table.row_count
        recombined = np.concatenate([s.as_matrix() for s in shards])
        # Every original row appears exactly once across the shards.
        original = sorted(map(tuple, data))
        assert sorted(map(tuple, recombined)) == original

    def test_state_roundtrip(self, kind: str) -> None:
        partitioner = _bound(PARTITIONER_FACTORIES[kind](4))
        rows = _rows(50, seed=4)
        partitioner.assign(rows)  # advances round-robin position
        arrays, meta = partitioner.state()
        clone = make_partitioner(partitioner.config(), 4)
        clone.load_state(arrays, meta)
        np.testing.assert_array_equal(
            clone.assign(_rows(50, seed=5)), partitioner.assign(_rows(50, seed=5))
        )


class TestHashPartitioner:
    def test_negative_zero_routes_with_positive_zero(self) -> None:
        partitioner = _bound(HashPartitioner(8))
        plus = partitioner.assign(np.array([[0.0, 1.0]]))
        minus = partitioner.assign(np.array([[-0.0, 1.0]]))
        assert plus[0] == minus[0]

    def test_roughly_balanced(self) -> None:
        partitioner = _bound(HashPartitioner(4))
        assignment = partitioner.assign(_rows(8000, seed=6))
        counts = np.bincount(assignment, minlength=4)
        assert counts.min() > 8000 / 4 * 0.8

    def test_seed_changes_routing(self) -> None:
        rows = _rows(200, seed=7)
        a = _bound(HashPartitioner(4, seed=0)).assign(rows)
        b = _bound(HashPartitioner(4, seed=1)).assign(rows)
        assert not np.array_equal(a, b)


class TestRangePartitioner:
    def test_boundaries_frozen_at_bind_time(self) -> None:
        data = _rows(300, seed=8)
        partitioner = _bound(RangePartitioner(3), data)
        before = partitioner.boundaries
        # New, very different rows must not re-derive the layout.
        partitioner.assign(_rows(300, seed=9) * 100.0)
        np.testing.assert_array_equal(partitioner.boundaries, before)

    def test_quantile_boundaries_balance_the_bind_table(self) -> None:
        data = _rows(900, seed=10)
        partitioner = _bound(RangePartitioner(3), data)
        counts = np.bincount(partitioner.assign(data), minlength=3)
        assert counts.min() >= 250  # ~300 each from tercile boundaries

    def test_explicit_boundaries_and_column(self) -> None:
        partitioner = RangePartitioner(3, column="x1", boundaries=[-1.0, 1.0])
        partitioner.bind(COLUMNS)
        assignment = partitioner.assign(
            np.array([[9.0, -5.0], [9.0, 0.0], [9.0, 5.0]])
        )
        np.testing.assert_array_equal(assignment, [0, 1, 2])

    def test_wrong_boundary_count_rejected(self) -> None:
        with pytest.raises(InvalidParameterError):
            RangePartitioner(3, boundaries=[0.0])

    def test_unbound_without_table_rejected(self) -> None:
        with pytest.raises(InvalidParameterError):
            RangePartitioner(3).bind(COLUMNS)


class TestRoundRobin:
    def test_position_advances_by_batch_size(self) -> None:
        partitioner = _bound(RoundRobinPartitioner(3))
        np.testing.assert_array_equal(partitioner.assign(_rows(4)), [0, 1, 2, 0])
        np.testing.assert_array_equal(partitioner.assign(_rows(2)), [1, 2])
        assert partitioner.position == 6


class TestFactory:
    def test_kind_names_and_configs(self) -> None:
        for spec in ("hash", {"kind": "range", "column": "x0"}, "round_robin"):
            partitioner = make_partitioner(spec, 4)
            assert partitioner.shards == 4

    def test_instance_passthrough_checks_shards(self) -> None:
        instance = HashPartitioner(4)
        assert make_partitioner(instance, 4) is instance
        with pytest.raises(InvalidParameterError):
            make_partitioner(instance, 8)

    def test_unknown_kind_rejected(self) -> None:
        with pytest.raises(InvalidParameterError):
            make_partitioner("zebra", 4)


# ---------------------------------------------------------------------------
# Hypothesis: bulk routing == row-at-a-time routing (bitwise shard contents)
# ---------------------------------------------------------------------------


def _route_in_slices(
    partitioner: Partitioner, rows: np.ndarray, sizes: list[int]
) -> list[np.ndarray]:
    """Shard contents after feeding ``rows`` in the given batch slicing."""
    shards: list[list[np.ndarray]] = [[] for _ in range(partitioner.shards)]
    start = 0
    for size in sizes:
        batch = rows[start : start + size]
        start += size
        assignment = partitioner.assign(batch)
        for shard_id in range(partitioner.shards):
            shards[shard_id].append(batch[assignment == shard_id])
    tail = rows[start:]
    if tail.shape[0]:
        assignment = partitioner.assign(tail)
        for shard_id in range(partitioner.shards):
            shards[shard_id].append(tail[assignment == shard_id])
    return [
        np.concatenate(parts) if parts else np.empty((0, rows.shape[1]))
        for parts in shards
    ]


@pytest.mark.parametrize("kind", sorted(PARTITIONER_FACTORIES))
@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_bulk_routing_matches_row_at_a_time(kind: str, data) -> None:
    """Satellite regression: shard contents are bitwise batch-invariant."""
    n = data.draw(st.integers(min_value=1, max_value=120), label="rows")
    seed = data.draw(st.integers(min_value=0, max_value=2**16), label="seed")
    shard_count = data.draw(st.integers(min_value=1, max_value=5), label="shards")
    rows = _rows(n, seed=seed)
    cut_count = data.draw(st.integers(min_value=0, max_value=6), label="cuts")
    sizes = [
        data.draw(st.integers(min_value=0, max_value=n), label=f"size{i}")
        for i in range(cut_count)
    ]

    bind_data = _rows(100, seed=1234)
    bulk = _route_in_slices(
        _bound(PARTITIONER_FACTORIES[kind](shard_count), bind_data), rows, sizes
    )
    row_wise = _route_in_slices(
        _bound(PARTITIONER_FACTORIES[kind](shard_count), bind_data),
        rows,
        [1] * rows.shape[0],
    )
    for shard_bulk, shard_rows in zip(bulk, row_wise):
        np.testing.assert_array_equal(shard_bulk, shard_rows)
