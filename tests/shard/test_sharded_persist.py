"""Persistence and serving of sharded models.

The single-file snapshot contract for ``"sharded"`` is exercised by the
registry-wide suites in ``tests/persist``; this module pins the sharded
specifics: the manifest layout (one npz per shard), ModelStore round-trips,
catalog save/restore, and serving through :class:`EstimatorServer` with
per-shard generation swaps.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.errors import InvalidParameterError, PersistenceError
from repro.core.estimator import create_estimator
from repro.engine.catalog import Catalog
from repro.persist.shards import MANIFEST_NAME, load_sharded, save_sharded
from repro.persist.snapshot import FORMAT_VERSION, load_estimator
from repro.persist.store import ModelStore
from repro.serve import EstimatorServer
from repro.shard.sharded import ShardedEstimator


@pytest.fixture()
def sharded(mixture_table_2d) -> ShardedEstimator:
    return ShardedEstimator(
        {"name": "equidepth", "buckets": 32}, shards=3, partitioner="range"
    ).fit(mixture_table_2d)


class TestManifest:
    def test_roundtrip_is_bitwise(self, sharded, workload_2d, tmp_path) -> None:
        before = sharded.estimate_batch(workload_2d)
        manifest_path = save_sharded(sharded, tmp_path / "model")
        assert manifest_path.name == MANIFEST_NAME
        loaded = load_sharded(tmp_path / "model")
        np.testing.assert_array_equal(loaded.estimate_batch(workload_2d), before)
        assert loaded.config() == sharded.config()
        assert loaded.row_count == sharded.row_count
        assert loaded.shard_count == sharded.shard_count
        np.testing.assert_array_equal(
            loaded.partitioner.boundaries, sharded.partitioner.boundaries
        )

    def test_layout_is_one_snapshot_per_shard(self, sharded, tmp_path) -> None:
        save_sharded(sharded, tmp_path / "model")
        files = sorted(p.name for p in (tmp_path / "model").iterdir())
        assert files == [
            MANIFEST_NAME,
            "shard-0000.npz",
            "shard-0001.npz",
            "shard-0002.npz",
        ]
        manifest = json.loads((tmp_path / "model" / MANIFEST_NAME).read_text())
        assert manifest["format"] == FORMAT_VERSION
        assert manifest["estimator"] == "sharded"
        assert manifest["shard_files"] == files[1:]

    def test_each_shard_file_loads_standalone(self, sharded, tmp_path) -> None:
        save_sharded(sharded, tmp_path / "model")
        shard = load_estimator(tmp_path / "model" / "shard-0001.npz")
        assert shard.name == "equidepth"
        assert shard.row_count == sharded.shard_row_counts()[1]

    def test_missing_manifest_rejected(self, tmp_path) -> None:
        with pytest.raises(PersistenceError, match="manifest"):
            load_sharded(tmp_path)

    def test_missing_shard_file_rejected(self, sharded, tmp_path) -> None:
        save_sharded(sharded, tmp_path / "model")
        (tmp_path / "model" / "shard-0002.npz").unlink()
        with pytest.raises(PersistenceError, match="missing shard"):
            load_sharded(tmp_path / "model")

    def test_future_format_rejected(self, sharded, tmp_path) -> None:
        save_sharded(sharded, tmp_path / "model")
        manifest_path = tmp_path / "model" / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["format"] = FORMAT_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(PersistenceError, match="format"):
            load_sharded(tmp_path / "model")

    def test_unfitted_or_foreign_model_rejected(self, small_table, tmp_path) -> None:
        with pytest.raises(PersistenceError, match="unfitted"):
            save_sharded(ShardedEstimator("equiwidth", shards=2), tmp_path / "m")
        with pytest.raises(PersistenceError, match="ShardedEstimator"):
            save_sharded(create_estimator("equiwidth").fit(small_table), tmp_path / "m")


class TestModelStoreIntegration:
    def test_store_publish_load_roundtrip(self, sharded, workload_2d, tmp_path) -> None:
        store = ModelStore(tmp_path / "store")
        before = sharded.estimate_batch(workload_2d)
        version = store.publish("stats", sharded)
        loaded = store.load("stats", version.version)
        assert isinstance(loaded, ShardedEstimator)
        np.testing.assert_array_equal(loaded.estimate_batch(workload_2d), before)
        header = store.describe("stats")
        assert header["estimator"] == "sharded"
        assert header["config"]["shards"] == 3

    def test_manifest_directory_coexists_with_store(
        self, sharded, workload_2d, tmp_path
    ) -> None:
        """A manifest dir inside the store tree must not break version scans."""
        store = ModelStore(tmp_path / "store")
        store.publish("stats", sharded)
        save_sharded(sharded, tmp_path / "store" / "stats" / "manifest")
        save_sharded(sharded, tmp_path / "store" / "loose-manifest")
        assert store.versions("stats") == [1]
        assert store.latest_version("stats") == 1
        assert store.model_names() == ["stats"]
        store.publish("stats", sharded)
        assert store.versions("stats") == [1, 2]
        loaded = store.load("stats")
        np.testing.assert_array_equal(
            loaded.estimate_batch(workload_2d), sharded.estimate_batch(workload_2d)
        )

    def test_catalog_save_restore_sharded(
        self, mixture_table_2d, workload_2d, tmp_path
    ) -> None:
        catalog = Catalog()
        catalog.add_table(mixture_table_2d)
        catalog.attach_sharded(
            mixture_table_2d.name, "equiwidth", shards=2, partitioner="hash"
        )
        before = catalog.estimate_batch(mixture_table_2d.name, workload_2d)
        store = ModelStore(tmp_path / "store")
        catalog.save(store)

        restored = Catalog()
        restored.add_table(mixture_table_2d)
        assert restored.restore(store) == [mixture_table_2d.name]
        assert isinstance(restored.estimator(mixture_table_2d.name), ShardedEstimator)
        np.testing.assert_array_equal(
            restored.estimate_batch(mixture_table_2d.name, workload_2d), before
        )


class TestShardedServing:
    def test_serves_and_swaps_per_shard(self, sharded, workload_2d) -> None:
        server = EstimatorServer(sharded, cache_size=8)
        first = server.estimate_batch(workload_2d)
        np.testing.assert_array_equal(server.estimate_batch(workload_2d), first)
        assert server.cache_info().hits == 1

        generation = server.generation
        shard_copy = server.checkout_shard(0)
        new_generation = server.publish_shard(0, shard_copy)
        assert new_generation == generation + 1
        # The swapped-in copy is state-identical, so estimates are unchanged
        # but re-computed under the new generation (cache was invalidated).
        np.testing.assert_array_equal(server.estimate_batch(workload_2d), first)
        assert server.generation == new_generation

    def test_per_shard_swap_changes_estimates(
        self, mixture_table_2d, workload_2d
    ) -> None:
        sharded = ShardedEstimator(
            {"name": "reservoir_sampling", "sample_size": 128},
            shards=2,
            partitioner="hash",
        ).fit(mixture_table_2d)
        server = EstimatorServer(sharded, cache_size=8)
        shard_copy = server.checkout_shard(1)
        shard_copy.insert(np.random.default_rng(21).normal(5.0, 0.1, size=(5000, 2)))
        server.publish_shard(1, shard_copy)
        served = server.model
        assert isinstance(served, ShardedEstimator)
        assert served.shard(1).row_count > sharded.shard(1).row_count
        assert served.shard(0) is sharded.shard(0)  # untouched shard is shared

    def test_per_shard_swap_requires_sharded_model(self, mixture_table_2d) -> None:
        server = EstimatorServer(create_estimator("equiwidth").fit(mixture_table_2d))
        with pytest.raises(InvalidParameterError, match="not sharded"):
            server.checkout_shard(0)
