"""Degraded-mode sharded serving: shard loss, renormalization, healing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import InjectedFault, ReproError
from repro.data.generators import gaussian_mixture_table
from repro.fault.plan import FaultPlan, use_fault_plan
from repro.persist.snapshot import load_estimator, save_estimator
from repro.shard.parallel import ShardExecutor
from repro.shard.sharded import ShardedEstimator
from repro.workload.generators import UniformWorkload
from repro.workload.queries import compile_queries

TABLE = gaussian_mixture_table(rows=2000, dimensions=2, seed=31, name="degraded")


def _sharded(shards: int = 4) -> ShardedEstimator:
    return ShardedEstimator(
        base={"name": "kde", "sample_size": 100},
        shards=shards,
        parallel=None,  # serial: deterministic fault-to-shard assignment
    ).fit(TABLE)


def _plan(estimator, count: int = 30, seed: int = 5):
    queries = UniformWorkload(TABLE, volume_fraction=0.2, seed=seed).generate(count)
    return compile_queries(queries, estimator.columns)


class TestExecutorRetries:
    def test_transient_faults_are_retried_with_backoff(self) -> None:
        executor = ShardExecutor("serial", retry_backoff=0.0)
        plan = FaultPlan(seed=1)
        rule = plan.arm("shard.task", action="raise", at=(1, 2))
        with use_fault_plan(plan):
            assert executor.map(lambda x: x + 1, range(3)) == [1, 2, 3]
        assert rule.fired == 2  # both faults absorbed inside the retry budget

    def test_exhausted_retries_propagate(self) -> None:
        executor = ShardExecutor("serial", retries=1, retry_backoff=0.0)
        plan = FaultPlan(seed=1)
        plan.arm("shard.task", action="raise")
        with use_fault_plan(plan):
            with pytest.raises(InjectedFault):
                executor.map(lambda x: x, range(2))

    def test_retries_parameter_validated(self) -> None:
        from repro.core.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            ShardExecutor("serial", retries=-1)
        with pytest.raises(InvalidParameterError):
            ShardExecutor("serial", retry_backoff=-0.1)


class TestShardLoss:
    def test_transient_estimate_fault_is_probation_not_loss(self) -> None:
        """A one-off estimate fault excludes the shard from that batch only:
        the shard is retried on the next call, a success clears its strikes,
        and it is never marked lost."""
        sharded = _sharded()
        plan = _plan(sharded)
        full = sharded.estimate_batch(plan)

        fault = FaultPlan(seed=2)
        fault.arm("shard.estimate", action="raise", at=(1,))
        with use_fault_plan(fault):
            degraded = sharded.estimate_batch(plan)

        assert not sharded.degraded
        assert sharded.lost_shards == ()
        assert degraded.shape == full.shape
        assert np.all(degraded >= 0.0) and np.all(degraded <= 1.0)
        # The faulted shard recovered: the next call serves the full ensemble.
        np.testing.assert_array_equal(sharded.estimate_batch(plan), full)
        assert not sharded._estimate_strikes

    def test_consecutive_estimate_faults_mark_shard_lost(self) -> None:
        sharded = _sharded()
        plan = _plan(sharded)

        class _Faulty:
            row_count = sharded.shard(0).row_count

            def _estimate_batch(self, lows, highs):
                raise RuntimeError("synopsis fault")

        sharded._shards[0] = _Faulty()
        for _ in range(sharded.estimate_failure_threshold):
            assert not sharded.degraded
            estimates = sharded.estimate_batch(plan)
            assert np.all(estimates >= 0.0) and np.all(estimates <= 1.0)
        assert sharded.degraded
        assert sharded.lost_shards == (0,)

    def test_manual_mark_and_describe_surface(self) -> None:
        sharded = _sharded()
        assert not sharded.degraded
        assert "degraded" not in sharded.describe()
        sharded.mark_shard_lost(2)
        description = sharded.describe()
        assert description["degraded"] is True
        assert description["lost_shards"] == [2]
        assert "degraded" in repr(sharded)

    def test_insert_drops_rows_routed_to_lost_shards(self) -> None:
        sharded = ShardedEstimator(
            base={"name": "streaming_ade", "max_kernels": 32},
            shards=4,
            parallel=None,
        ).fit(TABLE)
        before = sharded.row_count
        sharded.mark_shard_lost(1)
        rows = TABLE.as_matrix()[:200]
        sharded.insert(rows)
        grew = sharded.row_count - before
        assert 0 < grew < 200  # the lost shard's share was dropped

    def test_all_shards_lost_raises(self) -> None:
        sharded = _sharded(shards=2)
        sharded.mark_shard_lost(0)
        sharded.mark_shard_lost(1)
        with pytest.raises(ReproError):
            sharded.estimate_batch(_plan(sharded))

    def test_degraded_estimates_stay_close_to_full(self) -> None:
        sharded = _sharded()
        plan = _plan(sharded, count=60)
        full = sharded.estimate_batch(plan)
        sharded.mark_shard_lost(3)
        degraded = sharded.estimate_batch(plan)
        deviation = float(np.mean(np.abs(degraded - full) / np.maximum(full, 1e-2)))
        assert deviation <= 0.15  # the documented degraded-mode tolerance


class TestHealing:
    def test_refit_shard_restores_the_lost_shard(self) -> None:
        sharded = _sharded()
        plan = _plan(sharded)
        full = sharded.estimate_batch(plan)
        sharded.mark_shard_lost(1)
        sharded.refit_shard(1, TABLE)
        assert not sharded.degraded
        np.testing.assert_array_equal(sharded.estimate_batch(plan), full)

    def test_with_shard_swap_heals_the_clone(self) -> None:
        sharded = _sharded()
        healthy = sharded.shard(1)
        sharded.mark_shard_lost(1)
        clone = sharded.with_shard(1, healthy)
        assert not clone.degraded
        assert sharded.degraded  # the original is untouched

    def test_full_fit_resets_lost_set(self) -> None:
        sharded = _sharded()
        sharded.mark_shard_lost(0)
        sharded.fit(TABLE)
        assert not sharded.degraded


class TestDegradedPersistence:
    def test_lost_set_round_trips_through_snapshot(self, tmp_path) -> None:
        sharded = _sharded()
        plan = _plan(sharded)
        sharded.mark_shard_lost(2)
        degraded = sharded.estimate_batch(plan)

        path = tmp_path / "degraded.npz"
        save_estimator(sharded, path)
        loaded = load_estimator(path)
        assert loaded.degraded
        assert loaded.lost_shards == (2,)
        np.testing.assert_array_equal(loaded.estimate_batch(plan), degraded)
